// Golden package for the iterclose analyzer. Any value with Next and
// Close() error methods counts as an iterator; the local scanIter mirrors
// the exec package's TupleIter shape.
package iterclose

import "errors"

type Tuple []int

type scanIter struct{ closed bool }

func (s *scanIter) Next() (Tuple, bool, error) { return nil, false, nil }
func (s *scanIter) Close() error               { s.closed = true; return nil }

func open(name string) (*scanIter, error) { return &scanIter{}, nil }

// joinIter wraps two children; constructing it takes ownership.
type joinIter struct{ left, right *scanIter }

func (j *joinIter) Next() (Tuple, bool, error) { return nil, false, nil }
func (j *joinIter) Close() error {
	return errors.Join(j.left.Close(), j.right.Close())
}

func newJoin(l, r *scanIter) *joinIter { return &joinIter{left: l, right: r} }

// cursor drains and closes itself in All.
type cursor struct{ it *scanIter }

func (c *cursor) Next() (Tuple, bool, error) { return nil, false, nil }
func (c *cursor) Close() error               { return c.it.Close() }
func (c *cursor) All() ([]Tuple, error)      { return nil, c.Close() }

func openCursor() (*cursor, error) { return &cursor{}, nil }

// ---- negative cases ----

func closedOnAllPaths() error {
	it, err := open("a")
	if err != nil {
		return err
	}
	defer func() { _ = it.Close() }()
	_, _, err = it.Next()
	return err
}

func returned() (*scanIter, error) {
	return open("b")
}

func handedToWrapper() (*joinIter, error) {
	l, err := open("l")
	if err != nil {
		return nil, err
	}
	r, err := open("r")
	if err != nil {
		_ = l.Close()
		return nil, err
	}
	return newJoin(l, r), nil
}

func drainedByAll() ([]Tuple, error) {
	c, err := openCursor()
	if err != nil {
		return nil, err
	}
	return c.All()
}

func annotated() *scanIter {
	it, _ := open("c") //lint:iter-escapes registered with the session
	register(it)
	return nil
}

var registry []*scanIter

func register(it *scanIter) { registry = append(registry, it) }

func returnClose() error {
	it, err := open("d")
	if err != nil {
		return err
	}
	return it.Close()
}

// gatherIter mirrors the exec package's exchange operator: it owns a slice
// of worker pipelines built in a loop.
type gatherWorker struct{ root *scanIter }

type gatherIter struct{ workers []*gatherWorker }

func (g *gatherIter) Next() (Tuple, bool, error) { return nil, false, nil }
func (g *gatherIter) Close() error {
	var errs []error
	for _, w := range g.workers {
		errs = append(errs, w.root.Close())
	}
	return errors.Join(errs...)
}

// gatherBuilderClosesOnError is the exec.buildGather shape: each loop
// iteration's iterator escapes into the worker slice (discharging its
// release duty); the error path closes everything built so far before
// bailing.
func gatherBuilderClosesOnError(n int) (*gatherIter, error) {
	g := &gatherIter{}
	for i := 0; i < n; i++ {
		root, err := open("worker")
		if err != nil {
			errs := []error{err}
			for _, built := range g.workers {
				errs = append(errs, built.root.Close())
			}
			return nil, errors.Join(errs...)
		}
		g.workers = append(g.workers, &gatherWorker{root: root})
	}
	return g, nil
}

// ---- positive cases ----

func leakedAtEnd() {
	it, _ := open("x") // want `iterator acquired by open is not released`
	_, _, _ = it.Next()
}

func leakOnSecondAcquire() (*joinIter, error) {
	l, err := open("l") // want `iterator acquired by open is not released`
	if err != nil {
		return nil, err
	}
	r, err := open("r")
	if err != nil {
		return nil, err // l leaks: err was reassigned, this guards r only
	}
	return newJoin(l, r), nil
}

func leakOnErrorBranch(cond bool) error {
	it, err := open("y") // want `iterator acquired by open is not released`
	if err != nil {
		return err
	}
	if cond {
		return errors.New("bail") // it leaks
	}
	return it.Close()
}

// gatherBuilderLeaksOnError is the broken variant of the builder: bailing
// out of the loop without closing the root acquired in THIS iteration (the
// earlier ones escaped into the slice and are fine).
func gatherBuilderLeaksOnError(n int, bad bool) (*gatherIter, error) {
	g := &gatherIter{}
	for i := 0; i < n; i++ {
		root, err := open("worker") // want `iterator acquired by open is not released`
		if err != nil {
			return nil, err
		}
		if bad {
			return nil, errors.New("validation failed after open") // root leaks
		}
		g.workers = append(g.workers, &gatherWorker{root: root})
	}
	return g, nil
}

// ---- cache-builder shapes ----

// cacheWarmClosesOnError mirrors the shared-cache warmers: scan once per
// key to pre-fill a cache, closing the scan on success AND on the error
// path inside the loop.
func cacheWarmClosesOnError(names []string) (map[string]Tuple, error) {
	cache := map[string]Tuple{}
	for _, n := range names {
		it, err := open(n)
		if err != nil {
			return nil, err
		}
		t, _, err := it.Next()
		if err != nil {
			_ = it.Close()
			return nil, err
		}
		cache[n] = t
		_ = it.Close()
	}
	return cache, nil
}

// cacheWarmLeaksOnError is the broken warmer: a mid-loop error return
// leaks the iterator opened in this iteration.
func cacheWarmLeaksOnError(names []string) (map[string]Tuple, error) {
	cache := map[string]Tuple{}
	for _, n := range names {
		it, err := open(n) // want `iterator acquired by open is not released`
		if err != nil {
			return nil, err
		}
		t, _, err := it.Next()
		if err != nil {
			return nil, err // it leaks
		}
		cache[n] = t
		_ = it.Close()
	}
	return cache, nil
}

// ---- cancelable-operator shapes ----

// resources mirrors exec.Resources: the cancel checkpoint and the memory
// budget the governed operators consult.
type resources struct{ budget int64 }

func (r *resources) Err() error         { return nil }
func (r *resources) Grow(b int64) error { return nil }
func (r *resources) Release(b int64)    {}

// cancelIter mirrors the checkpointed operator wrappers: it owns a child
// and a tick counter, and Close forwards to the child.
type cancelIter struct {
	child *scanIter
	res   *resources
	ticks uint64
}

func (c *cancelIter) Next() (Tuple, bool, error) {
	if c.ticks++; c.ticks&1023 == 0 {
		if err := c.res.Err(); err != nil {
			return nil, false, err
		}
	}
	return c.child.Next()
}
func (c *cancelIter) Close() error { return c.child.Close() }

// governedBuildClosesOnError is the exec.RunGoverned shape: the child is
// built first, and if the pre-run checkpoint already fails, the child is
// closed before the error escapes.
func governedBuildClosesOnError(res *resources) (*cancelIter, error) {
	child, err := open("scan")
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		_ = child.Close()
		return nil, err
	}
	return &cancelIter{child: child, res: res}, nil
}

// governedBuildLeaksOnError is the broken variant: the pre-run checkpoint
// bails without releasing the child it already owns.
func governedBuildLeaksOnError(res *resources) (*cancelIter, error) {
	child, err := open("scan") // want `iterator acquired by open is not released`
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err // child leaks
	}
	return &cancelIter{child: child, res: res}, nil
}

// governedMaterializeReleasesOnError mirrors the materializing operators
// under a memory budget: a failed Grow must still close the input before
// surfacing ErrMemoryLimit.
func governedMaterializeReleasesOnError(res *resources) ([]Tuple, error) {
	it, err := open("build")
	if err != nil {
		return nil, err
	}
	var out []Tuple
	var bytes int64
	for {
		t, ok, err := it.Next()
		if err != nil {
			_ = it.Close()
			res.Release(bytes)
			return nil, err
		}
		if !ok {
			break
		}
		// Record the charge before checking it: a failing Grow still counts
		// and the error path below must release it.
		bytes += int64(len(t))
		if err := res.Grow(int64(len(t))); err != nil {
			_ = it.Close()
			res.Release(bytes)
			return nil, err
		}
		out = append(out, t)
	}
	_ = it.Close()
	res.Release(bytes)
	return out, nil
}

// governedMaterializeLeaksOnGrowFailure is the broken variant: the memory
// rejection path returns without closing the input iterator.
func governedMaterializeLeaksOnGrowFailure(res *resources) ([]Tuple, error) {
	it, err := open("build") // want `iterator acquired by open is not released`
	if err != nil {
		return nil, err
	}
	var out []Tuple
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err // it leaks
		}
		if !ok {
			break
		}
		if err := res.Grow(int64(len(t))); err != nil {
			return nil, err // it leaks on the memory-limit path too
		}
		out = append(out, t)
	}
	_ = it.Close()
	return out, nil
}
