package bench

import (
	"fmt"
	"time"

	"github.com/mural-db/mural/internal/dataset"
	"github.com/mural-db/mural/internal/phonetic"
	"github.com/mural-db/mural/internal/server"
	"github.com/mural-db/mural/internal/types"
	"github.com/mural-db/mural/mural"
)

// ShardProc is one shard of a local cluster: an in-memory engine behind a
// TCP server.
type ShardProc struct {
	Eng  *mural.Engine
	Srv  *server.Server
	Addr string
}

// ShardCluster is a local N-shard deployment: N shard engines behind
// servers plus a coordinator engine whose `shards` setting routes to them.
// All processes live in this process — the wire protocol between them is
// real, the network is loopback.
type ShardCluster struct {
	Coord *mural.Engine
	Procs []*ShardProc
}

// StartShardCluster boots n shard servers and a coordinator configured to
// route to them. tune, when set, adjusts the coordinator's Config before
// Open (retry budget, op timeout, fault-injection wrap).
func StartShardCluster(n int, tune func(*mural.Config)) (*ShardCluster, error) {
	c := &ShardCluster{}
	addrs := ""
	for i := 0; i < n; i++ {
		eng, err := mural.Open(mural.Config{})
		if err != nil {
			c.Close()
			return nil, err
		}
		srv := server.New(eng)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			_ = eng.Close()
			c.Close()
			return nil, err
		}
		c.Procs = append(c.Procs, &ShardProc{Eng: eng, Srv: srv, Addr: addr})
		if i > 0 {
			addrs += ","
		}
		addrs += addr
	}
	cfg := mural.Config{}
	if tune != nil {
		tune(&cfg)
	}
	coord, err := mural.Open(cfg)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.Coord = coord
	if _, err := coord.Exec("SET shards = '" + addrs + "'"); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Kill abruptly stops shard i (server and engine), simulating a crashed
// process. The coordinator is not told.
func (c *ShardCluster) Kill(i int) {
	p := c.Procs[i]
	if p.Srv != nil {
		_ = p.Srv.Close()
		p.Srv = nil
	}
	if p.Eng != nil {
		_ = p.Eng.Close()
		p.Eng = nil
	}
}

// Close tears the cluster down, coordinator first (it holds client
// connections into the shards).
func (c *ShardCluster) Close() {
	if c.Coord != nil {
		_ = c.Coord.Close()
		c.Coord = nil
	}
	for i := range c.Procs {
		c.Kill(i)
	}
}

// LoadNames builds the Ψ names fixture through one statement sink — the
// coordinator of a cluster or a plain single-node engine — so sharded and
// unsharded runs load byte-identical data through the same SQL.
func LoadNames(execQ func(q string) error, recs []dataset.NameRecord, probes int) ([]types.UniText, error) {
	if err := execQ(`CREATE TABLE names (id INT, name UNITEXT, pdist INT)`); err != nil {
		return nil, err
	}
	pivot := "aeioun"
	rows := make([]string, 0, len(recs))
	for _, r := range recs {
		pd := phonetic.EditDistance(r.Name.Phoneme, pivot)
		rows = append(rows, fmt.Sprintf("(%d, %s, %d)", r.ID, uniTextLit(r.Name), pd))
	}
	if err := batchInsert("names", rows, execQ); err != nil {
		return nil, err
	}
	if err := execQ(`CREATE TABLE probe (id INT, name UNITEXT)`); err != nil {
		return nil, err
	}
	probeRows := make([]string, 0, probes)
	seen := map[int]bool{}
	var queries []types.UniText
	for _, r := range recs {
		if r.Name.Lang != types.LangEnglish {
			continue
		}
		if len(queries) < 20 {
			queries = append(queries, r.Name)
		}
		if len(probeRows) < probes && !seen[r.Cluster] {
			seen[r.Cluster] = true
			probeRows = append(probeRows, fmt.Sprintf("(%d, %s)", len(probeRows), uniTextLit(r.Name)))
		}
	}
	if err := batchInsert("probe", probeRows, execQ); err != nil {
		return nil, err
	}
	for _, q := range []string{
		`CREATE INDEX idx_names_mtree ON names (name) USING MTREE`,
		`ANALYZE`,
	} {
		if err := execQ(q); err != nil {
			return nil, err
		}
	}
	return queries, nil
}

// ShardRow is one row of the scale-out experiment: Ψ scan throughput at a
// shard count, with the identical-answers assertion folded in (Matches is
// compared across rows by the caller).
type ShardRow struct {
	Shards     int
	Names      int
	Queries    int
	MeanMillis float64
	Speedup    float64
	Matches    int64
}

// ShardConfig parameterizes RunShard.
type ShardConfig struct {
	Names     int
	Threshold int
	Queries   int
	Seed      int64
	// Counts lists the shard counts to measure; 1 means single-node (the
	// baseline every other count is compared against).
	Counts []int
}

// RunShard measures the same Ψ count workload on a single node and on local
// shard clusters, asserting every configuration computes identical answers
// and reporting the speedup over single-node. Local shards share one
// machine, so the expected speedup is bounded by core count and the paper's
// per-tuple Ψ cost dominating the wire overhead (§5.3).
func RunShard(cfg ShardConfig) ([]ShardRow, error) {
	if cfg.Names <= 0 {
		cfg.Names = 4000
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 5
	}
	if len(cfg.Counts) == 0 {
		cfg.Counts = []int{1, 2, 4}
	}
	recs := dataset.GenerateNames(dataset.NamesConfig{Records: cfg.Names, Seed: cfg.Seed})

	var out []ShardRow
	var baseline float64
	var baseMatches int64
	for _, n := range cfg.Counts {
		row, err := runShardCount(n, recs, cfg)
		if err != nil {
			return nil, err
		}
		if baseline == 0 {
			baseline = row.MeanMillis
			baseMatches = row.Matches
		}
		if row.Matches != baseMatches {
			return nil, fmt.Errorf("bench: %d-shard run found %d matches, baseline found %d",
				n, row.Matches, baseMatches)
		}
		if row.MeanMillis > 0 {
			row.Speedup = baseline / row.MeanMillis
		}
		out = append(out, row)
	}
	return out, nil
}

func runShardCount(n int, recs []dataset.NameRecord, cfg ShardConfig) (ShardRow, error) {
	var eng *mural.Engine
	if n <= 1 {
		e, err := mural.Open(mural.Config{})
		if err != nil {
			return ShardRow{}, err
		}
		defer func() { _ = e.Close() }()
		eng = e
	} else {
		c, err := StartShardCluster(n, nil)
		if err != nil {
			return ShardRow{}, err
		}
		defer c.Close()
		eng = c.Coord
	}
	execQ := func(q string) error { _, err := eng.Exec(q); return err }
	queries, err := LoadNames(execQ, recs, 50)
	if err != nil {
		return ShardRow{}, err
	}
	if len(queries) > cfg.Queries {
		queries = queries[:cfg.Queries]
	}
	var total time.Duration
	var matches int64
	for _, q := range queries {
		res, err := eng.Exec(fmt.Sprintf(
			`SELECT count(*) FROM names WHERE name LEXEQUAL %s THRESHOLD %d`, quote(q.Text), cfg.Threshold))
		if err != nil {
			return ShardRow{}, err
		}
		total += res.Elapsed
		matches += res.Rows[0][0].Int()
	}
	return ShardRow{
		Shards:     n,
		Names:      cfg.Names,
		Queries:    len(queries),
		MeanMillis: total.Seconds() * 1000 / float64(len(queries)),
		Matches:    matches,
	}, nil
}
