package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/mural-db/mural/internal/plan"
	"github.com/mural-db/mural/internal/types"
)

// Parallel execution: a Gather operator runs its child subtree on N worker
// goroutines and merges their output streams in arrival order. Workers
// partition the driving table morsel-style — each claims disjoint page
// ranges from a shared atomic cursor and scans them through the (mutex-
// guarded) buffer pool — so the heap is read exactly once in total. Tables
// too small for page-granularity morsels fall back to striping: every
// worker scans the table but keeps only rows whose ordinal matches its
// worker id, which preserves the exactly-once guarantee at row granularity.
//
// Isolation contract: each worker gets its own evaluator — its own RunStats,
// its own ExecStats collector (when the parent collects), and its own G2P
// memo cache — so no executor state is shared between goroutines. Worker
// figures are folded into the parent's at stream end or Close, whichever
// comes first. Shared engine structures (buffer pool, heaps, B-/M-Tree,
// q-gram, closure cache, converter registry) are internally synchronized
// and safe for the concurrent readers a Gather creates; parallel plans
// never write, so the WAL's no-steal batch protocol is untouched — a
// concurrent writer's batch pins simply serialize with worker page pins at
// the buffer pool as usual.

// gatherBatchSize is how many tuples a worker accumulates per channel send;
// batching amortizes the channel transfer over rows that each cost far more
// than a send to produce (a Ψ evaluation is ~µs).
const gatherBatchSize = 64

// morselChunkPages is how many heap pages one morsel claim covers.
const morselChunkPages = 4

// parallelCtx is the per-worker build/runtime context; its presence on an
// evaluator marks "building (then running) inside a Gather worker".
type parallelCtx struct {
	id      int
	workers int
	shared  *gatherShared
}

// gatherShared is built once per Gather and shared by its workers. The map
// is populated while workers are built sequentially and only read after, so
// it needs no lock; the morselSources inside hand out ranges atomically.
type gatherShared struct {
	sources map[*plan.Node]*morselSource
}

// morselSource hands out disjoint page ranges of one table to any worker
// that asks. Claims are a single atomic add, the morsel-driven scheduling
// discipline: fast workers naturally take more of the table.
type morselSource struct {
	table   string
	npages  int64
	striped bool
	next    atomic.Int64
}

func (m *morselSource) claim() (lo, hi int64, ok bool) {
	lo = m.next.Add(morselChunkPages) - morselChunkPages
	if lo >= m.npages {
		return 0, 0, false
	}
	hi = lo + morselChunkPages
	if hi > m.npages {
		hi = m.npages
	}
	return lo, hi, true
}

// morselsFor returns (creating on first use) the shared morsel source for a
// scan node. Workers are built sequentially, so the map needs no lock.
func (pc *parallelCtx) morselsFor(env Env, n *plan.Node) (*morselSource, error) {
	src, ok := pc.shared.sources[n]
	if !ok {
		np, err := env.TablePages(n.Table)
		if err != nil {
			return nil, err
		}
		src = &morselSource{table: n.Table, npages: np}
		// A table with fewer pages than workers×chunk cannot keep everyone
		// busy at page granularity; stripe rows instead.
		src.striped = np < int64(pc.workers)*morselChunkPages
		pc.shared.sources[n] = src
	}
	return src, nil
}

// scanIter builds this worker's share of a parallel table scan. The
// worker's evaluator threads through so both partition shapes checkpoint
// cancellation: a worker can spin through many claimed pages (or skip long
// stripe runs) without ever surfacing a row to a governed parent iterator.
func (pc *parallelCtx) scanIter(env Env, ev *evaluator, n *plan.Node) (TupleIter, error) {
	src, err := pc.morselsFor(env, n)
	if err != nil {
		return nil, err
	}
	if src.striped {
		child, err := env.ScanTable(n.Table)
		if err != nil {
			return nil, err
		}
		return &stripedIter{child: child, ev: ev, idx: int64(pc.id), mod: int64(pc.workers)}, nil
	}
	return &morselScanIter{env: env, ev: ev, src: src}, nil
}

// morselScanIter scans morsels claimed from the shared source until the
// table is exhausted.
type morselScanIter struct {
	env Env
	ev  *evaluator
	src *morselSource
	cur TupleIter
}

func (m *morselScanIter) Next() (types.Tuple, bool, error) {
	for {
		if err := m.ev.tick(); err != nil {
			return nil, false, err
		}
		if m.cur == nil {
			lo, hi, ok := m.src.claim()
			if !ok {
				return nil, false, nil
			}
			it, err := m.env.ScanTablePages(m.src.table, lo, hi)
			if err != nil {
				return nil, false, err
			}
			m.cur = it
		}
		t, ok, err := m.cur.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return t, true, nil
		}
		err = m.cur.Close()
		m.cur = nil
		if err != nil {
			return nil, false, err
		}
	}
}

func (m *morselScanIter) Close() error {
	if m.cur == nil {
		return nil
	}
	err := m.cur.Close()
	m.cur = nil
	return err
}

// stripedIter keeps every mod-th row of its child, offset by this worker's
// id: the row-granularity fallback partition for small tables.
type stripedIter struct {
	child TupleIter
	ev    *evaluator
	idx   int64
	mod   int64
	n     int64
}

func (s *stripedIter) Next() (types.Tuple, bool, error) {
	for {
		if err := s.ev.tick(); err != nil {
			return nil, false, err
		}
		t, ok, err := s.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		keep := s.n%s.mod == s.idx
		s.n++
		if keep {
			return t, true, nil
		}
	}
}

func (s *stripedIter) Close() error { return s.child.Close() }

// gatherWorker is one worker pipeline plus its isolated measuring state.
// Exactly one of root/broot is set: vectorized workers drive a batch
// pipeline and ship whole pooled batches through the merge channel.
type gatherWorker struct {
	root  TupleIter
	broot BatchIter
	ev    *evaluator
	// err is this worker's terminal error (Next or Close); written by the
	// worker goroutine, read only after wg.Wait.
	err error
}

func (w *gatherWorker) close() error {
	if w.broot != nil {
		return w.broot.Close()
	}
	return w.root.Close()
}

// buildGather instantiates the worker pipelines for a Gather node. Workers
// are built sequentially on the calling goroutine — nothing runs until the
// first Next — so shared build state needs no synchronization.
func buildGather(env Env, ev *evaluator, n *plan.Node) (TupleIter, error) {
	if ev.par != nil {
		return nil, fmt.Errorf("exec: nested Gather operators are not supported")
	}
	w := n.Workers
	if w < 1 {
		w = 1
	}
	// A shard exchange carries one Remote child per shard; worker i drives
	// child i's stream so a slow shard never holds up the others. A local
	// Gather keeps the classic shape: every worker runs the same subtree
	// over disjoint morsels.
	fanout := len(n.Children) > 1
	if fanout {
		w = len(n.Children)
	}
	shared := &gatherShared{sources: make(map[*plan.Node]*morselSource)}
	g := &gatherIter{parent: ev, res: ev.res, stop: make(chan struct{})}
	for i := 0; i < w; i++ {
		wev := &evaluator{
			env:   env,
			stats: &RunStats{},
			par:   &parallelCtx{id: i, workers: w, shared: shared},
			// Workers share the query's governance state (it is atomic /
			// context-based), but each keeps its own tick counter.
			res: ev.res,
		}
		if ev.collector != nil {
			if ev.collector.Timed() {
				wev.collector = NewExecStats()
			} else {
				wev.collector = NewCountStats()
			}
		}
		// Vectorized workers inherit the parent's strategy and batch pool, so
		// a worker's batches flow to the consumer and back into the shared
		// pool. The worker drives the batch pipeline directly — one channel
		// send per ~BatchRows rows instead of per gatherBatchSize.
		wev.vec, wev.fuse, wev.pool = ev.vec, ev.fuse, ev.pool
		child := n.Children[0]
		if fanout {
			child = n.Children[i]
		}
		w := &gatherWorker{ev: wev}
		var err error
		if wev.vec {
			var ok bool
			w.broot, ok, err = buildVec(env, wev, child)
			if err == nil && !ok {
				w.root, err = build(env, wev, child)
			}
		} else {
			w.root, err = build(env, wev, child)
		}
		if err != nil {
			errs := []error{err}
			for _, built := range g.workers {
				errs = append(errs, built.close())
			}
			return nil, errors.Join(errs...)
		}
		g.workers = append(g.workers, w)
	}
	return g, nil
}

// gatherIter merges the worker streams. Workers start lazily on the first
// Next; until then Close releases the pipelines synchronously. After start,
// every worker owns (and closes) its root on its own goroutine, and Close
// only signals stop and waits — no iterator is ever touched from two
// goroutines.
// gatherBatch is one merged unit: the rows plus their accounted bytes (zero
// when the query is ungoverned). Bytes stay charged from the producer's
// Grow until the consumer finishes the batch or the Gather winds down. When
// a vectorized worker produced it, b is the pooled batch carrying the rows;
// the consumer recycles it (which also settles the bytes) instead of a bare
// Release.
type gatherBatch struct {
	rows  []types.Tuple
	bytes int64
	b     *Batch
}

type gatherIter struct {
	parent  *evaluator
	res     *Resources
	workers []*gatherWorker

	out      chan gatherBatch
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	started    bool
	closed     bool
	merged     bool
	finished   bool
	failed     error
	batch      []types.Tuple
	batchBytes int64
	curBatch   *Batch
	bi         int
}

// finishBatch settles the batch currently being consumed: a pooled batch is
// recycled (which releases its charge), a row-drain batch just releases.
func (g *gatherIter) finishBatch() {
	if g.curBatch != nil {
		g.parent.putBatch(g.curBatch)
		g.curBatch = nil
	} else {
		g.res.Release(g.batchBytes)
	}
	g.batchBytes = 0
}

func (g *gatherIter) start() {
	g.started = true
	g.out = make(chan gatherBatch, len(g.workers)*2)
	for _, w := range g.workers {
		g.wg.Add(1)
		go g.runWorker(w)
	}
	go func() {
		g.wg.Wait()
		close(g.out)
	}()
}

func (g *gatherIter) interrupt() {
	g.stopOnce.Do(func() { close(g.stop) })
}

func (g *gatherIter) runWorker(w *gatherWorker) {
	defer g.wg.Done()
	var err error
	if w.broot != nil {
		err = g.drainBatches(w)
	} else {
		err = g.drain(w)
	}
	err = errors.Join(err, w.close())
	if err != nil {
		w.err = err
		// The stream is dead: stop the other workers promptly too.
		g.interrupt()
	}
}

// drainBatches pulls a vectorized worker pipeline to exhaustion, forwarding
// whole pooled batches: one send per ~BatchRows rows. The producer already
// charged each batch's bytes (chargeBatch), so the charge simply rides the
// channel; a batch that cannot be delivered because the consumer stopped is
// recycled here (settling its charge).
func (g *gatherIter) drainBatches(w *gatherWorker) error {
	for {
		select {
		case <-g.stop:
			return nil
		default:
		}
		b, err := w.broot.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		select {
		case g.out <- gatherBatch{rows: b.Rows, bytes: b.bytes, b: b}:
		case <-g.stop:
			w.ev.putBatch(b)
			return nil
		}
	}
}

// drain pulls the worker pipeline to exhaustion, shipping rows in batches.
// It returns early (nil) when the consumer signalled stop. Each row is a
// cancellation checkpoint (through the worker's own evaluator), so a
// canceled parallel scan stops within one tick interval per worker; under a
// memory budget every in-flight merge batch is charged before it is queued.
func (g *gatherIter) drain(w *gatherWorker) error {
	batch := make([]types.Tuple, 0, gatherBatchSize)
	var batchBytes int64
	flush := func() (bool, error) {
		if len(batch) == 0 {
			return true, nil
		}
		if err := g.res.Grow(batchBytes); err != nil {
			// Grow records the charge even on failure, and this batch never
			// reaches the consumer — return the bytes here, or they stay
			// accounted for the rest of the query.
			g.res.Release(batchBytes)
			return false, err
		}
		select {
		case g.out <- gatherBatch{rows: batch, bytes: batchBytes}:
			batch = make([]types.Tuple, 0, gatherBatchSize)
			batchBytes = 0
			return true, nil
		case <-g.stop:
			g.res.Release(batchBytes)
			return false, nil
		}
	}
	for {
		select {
		case <-g.stop:
			return nil
		default:
		}
		if err := w.ev.tick(); err != nil {
			return err
		}
		t, ok, err := w.root.Next()
		if err != nil {
			return err
		}
		if !ok {
			_, err := flush()
			return err
		}
		batch = append(batch, t)
		if g.res != nil {
			batchBytes += tupleBytes(t)
		}
		if len(batch) == gatherBatchSize {
			ok, err := flush()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
	}
}

func (g *gatherIter) Next() (types.Tuple, bool, error) {
	if g.failed != nil {
		return nil, false, g.failed
	}
	if g.finished {
		return nil, false, nil
	}
	if !g.started {
		g.start()
	}
	if g.bi < len(g.batch) {
		t := g.batch[g.bi]
		g.bi++
		return t, true, nil
	}
	g.finishBatch()
	batch, ok := <-g.out
	if !ok {
		// All workers done (wg.Wait happened-before the channel close, so
		// worker state is visible): merge stats and surface any error.
		if err := g.finish(); err != nil {
			g.failed = err
			return nil, false, err
		}
		g.finished = true
		return nil, false, nil
	}
	g.batch, g.bi, g.batchBytes, g.curBatch = batch.rows, 1, batch.bytes, batch.b
	return batch.rows[0], true, nil
}

// finish folds every worker's counters into the parent evaluator and joins
// worker errors. Idempotent: the fold happens exactly once no matter how
// the Gather winds down.
func (g *gatherIter) finish() error {
	if g.merged {
		return nil
	}
	g.merged = true
	var errs []error
	for _, w := range g.workers {
		g.parent.stats.merge(w.ev.stats)
		if g.parent.collector != nil {
			g.parent.collector.Merge(w.ev.collector)
		}
		if w.err != nil {
			errs = append(errs, w.err)
		}
	}
	return errors.Join(errs...)
}

func (g *gatherIter) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	if !g.started {
		var errs []error
		for _, w := range g.workers {
			errs = append(errs, w.close())
		}
		return errors.Join(errs...)
	}
	g.interrupt()
	g.wg.Wait()
	// Settle the batch being consumed and any batches still queued (the
	// closer goroutine closes g.out once wg.Wait returns, so the range
	// terminates); pooled batches go back to the pool, their charge with
	// them.
	g.finishBatch()
	for b := range g.out {
		if b.b != nil {
			g.parent.putBatch(b.b)
		} else {
			g.res.Release(b.bytes)
		}
	}
	err := g.finish()
	if g.failed != nil {
		// Next already surfaced this error; don't report it twice.
		return nil
	}
	return err
}
