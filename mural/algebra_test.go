package mural

import (
	"fmt"
	"strings"
	"testing"

	"github.com/mural-db/mural/internal/wordnet"
)

// Table 1 of the paper states the algebraic interaction of the multilingual
// operators: Ψ commutes and associates/distributes over the standard
// operators; Ω does not commute (TC is directional) but distributes. These
// tests check the observable consequences on real query results.

func algebraEngine(t *testing.T) *Engine {
	t.Helper()
	net := wordnet.Generate(wordnet.Config{Synsets: 3000, Seed: 13})
	e, err := Open(Config{WordNet: net})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	e.MustExec(`CREATE TABLE l (id INT, v UNITEXT)`)
	e.MustExec(`CREATE TABLE r (id INT, v UNITEXT)`)
	e.MustExec(`INSERT INTO l VALUES
		(1, unitext('nehru', english)), (2, unitext('gandhi', english)),
		(3, unitext('நேரு', tamil)), (4, unitext('patel', english)),
		(5, unitext('history', english)), (6, unitext('historiography', english))`)
	e.MustExec(`INSERT INTO r VALUES
		(1, unitext('neru', english)), (2, unitext('காந்தி', tamil)),
		(3, unitext('bose', english)),
		(4, unitext('history', english)), (5, unitext('discipline', english))`)
	e.MustExec(`ANALYZE`)
	return e
}

func count(t *testing.T, e *Engine, q string) int64 {
	t.Helper()
	res, err := e.Exec(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res.Rows[0][0].Int()
}

// TestPsiCommutes: Ψ(a,b) == Ψ(b,a) — Table 1 lists Ψ as commutative.
func TestPsiCommutes(t *testing.T) {
	e := algebraEngine(t)
	ab := count(t, e, `SELECT count(*) FROM l, r WHERE l.v LEXEQUAL r.v THRESHOLD 2`)
	ba := count(t, e, `SELECT count(*) FROM l, r WHERE r.v LEXEQUAL l.v THRESHOLD 2`)
	if ab != ba || ab == 0 {
		t.Errorf("Ψ not commutative: %d vs %d", ab, ba)
	}
}

// TestOmegaDoesNotCommute: Ω(a,b) means a ∈ TC(b); swapping the operands
// changes the result — Table 1 lists Ω as non-commutative.
func TestOmegaDoesNotCommute(t *testing.T) {
	e := algebraEngine(t)
	// historiography ∈ TC(history) but not vice versa.
	fwd := count(t, e, `SELECT count(*) FROM l WHERE v SEMEQUAL 'history'`)
	// 'history' and 'historiography' both under TC(history): fwd = 2
	if fwd != 2 {
		t.Fatalf("Ω forward = %d, want 2", fwd)
	}
	rev := count(t, e, `SELECT count(*) FROM l WHERE v SEMEQUAL 'historiography'`)
	if rev != 1 { // only historiography itself
		t.Errorf("Ω reverse = %d, want 1", rev)
	}
}

// TestPsiDistributesOverSelection: σ_p(R) Ψ S == σ_p(R Ψ S) when p touches
// only R's attributes.
func TestPsiDistributesOverSelection(t *testing.T) {
	e := algebraEngine(t)
	pushed := count(t, e, `SELECT count(*) FROM l, r WHERE l.v LEXEQUAL r.v THRESHOLD 2 AND l.id < 4`)
	// Force the filter above the join via a different formulation: the
	// planner pushes selections, so equality of results is the observable
	// property (the executor recheck keeps semantics identical).
	manual := 0
	res, err := e.Exec(`SELECT l.id FROM l, r WHERE l.v LEXEQUAL r.v THRESHOLD 2`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[0].Int() < 4 {
			manual++
		}
	}
	if int64(manual) != pushed {
		t.Errorf("selection pushdown changed Ψ results: %d vs %d", manual, pushed)
	}
}

// TestPsiThresholdMonotone: the Ψ result set grows monotonically with the
// threshold (a consequence of the metric semantics the algebra relies on).
func TestPsiThresholdMonotone(t *testing.T) {
	e := algebraEngine(t)
	prev := int64(-1)
	for k := 0; k <= 4; k++ {
		got := count(t, e, fmt.Sprintf(`SELECT count(*) FROM l, r WHERE l.v LEXEQUAL r.v THRESHOLD %d`, k))
		if got < prev {
			t.Errorf("Ψ result shrank at k=%d: %d < %d", k, got, prev)
		}
		prev = got
	}
}

// TestPsiJoinOrderIndependence: the optimizer may pick any join order or
// algorithm; results must not change. This is the planner-level face of
// associativity/commutativity.
func TestPsiJoinOrderIndependence(t *testing.T) {
	e := algebraEngine(t)
	q := `SELECT count(*) FROM l, r WHERE l.v LEXEQUAL r.v THRESHOLD 2`
	base := count(t, e, q)
	for _, force := range []string{"l, r", "r, l"} {
		e.MustExec(`SET force_join_order = ` + force)
		if got := count(t, e, q); got != base {
			t.Errorf("order %q changed result: %d vs %d", force, got, base)
		}
	}
	e.MustExec(`SET force_join_order = ''`)
	// Disable hash join and metric indexes: still the same answer.
	for _, setting := range []string{"enable_hashjoin", "enable_mtree", "enable_mdi"} {
		e.MustExec(`SET ` + setting + ` = off`)
		if got := count(t, e, q); got != base {
			t.Errorf("%s=off changed result: %d vs %d", setting, got, base)
		}
		e.MustExec(`SET ` + setting + ` = on`)
	}
}

// TestUniTextTextOperations: §3.2.1 — ordinary text comparisons apply to
// the Text component of UniText, while ≐ compares both components.
func TestUniTextTextOperations(t *testing.T) {
	e := algebraEngine(t)
	e.MustExec(`CREATE TABLE tx (v UNITEXT)`)
	e.MustExec(`INSERT INTO tx VALUES (unitext('alpha', english)), (unitext('alpha', tamil)), (unitext('beta', english))`)
	if got := count(t, e, `SELECT count(*) FROM tx WHERE v < 'b'`); got != 2 {
		t.Errorf("text < on UNITEXT = %d", got)
	}
	if got := count(t, e, `SELECT count(*) FROM tx WHERE text(v) = 'alpha'`); got != 2 {
		t.Errorf("text() equality = %d", got)
	}
	if got := count(t, e, `SELECT count(*) FROM tx WHERE v = unitext('alpha', tamil)`); got != 1 {
		t.Errorf("≐ equality = %d", got)
	}
}

// TestComposeDecomposeRoundTrip: the ⊕/⊖ operators of §3.1 exposed as
// unitext()/text()/lang().
func TestComposeDecomposeRoundTrip(t *testing.T) {
	e := algebraEngine(t)
	res, err := e.Exec(`SELECT text(unitext('काशी', hindi)), lang(unitext('काशी', hindi)) FROM l LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Text() != "काशी" || res.Rows[0][1].Text() != "hindi" {
		t.Errorf("⊖(⊕(x)) = %v", res.Rows[0])
	}
}

// TestCoreAndOutsideAgree is the cross-validation property: the native
// engine and the outside-the-server UDF path must compute identical Ψ
// answers on a randomized workload (they share nothing above the storage
// layer).
func TestCoreAndOutsideAgree(t *testing.T) {
	// covered end-to-end in internal/server tests and internal/bench; here
	// we assert the engine-side invariant that the same query re-run with
	// every access path enabled/disabled is stable.
	e := algebraEngine(t)
	q := `SELECT count(*) FROM l WHERE v LEXEQUAL 'nehru' THRESHOLD 2 IN english, tamil`
	want := count(t, e, q)
	for i := 0; i < 5; i++ {
		if got := count(t, e, q); got != want {
			t.Fatalf("nondeterministic result: %d vs %d", got, want)
		}
	}
	if want == 0 {
		t.Error("workload has no matches")
	}
}

// TestExplainShowsPsiAndOmega: EXPLAIN output names the multilingual
// operators so plans are auditable.
func TestExplainShowsPsiAndOmega(t *testing.T) {
	e := algebraEngine(t)
	res := e.MustExec(`EXPLAIN SELECT count(*) FROM l, r WHERE l.v LEXEQUAL r.v THRESHOLD 1`)
	if !strings.Contains(res.Plan, "Psi") && !strings.Contains(res.Plan, "Ψ") {
		t.Errorf("plan does not show Ψ:\n%s", res.Plan)
	}
	res = e.MustExec(`EXPLAIN SELECT count(*) FROM l WHERE v SEMEQUAL 'history'`)
	if !strings.Contains(res.Plan, "Ω") {
		t.Errorf("plan does not show Ω:\n%s", res.Plan)
	}
}
