package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("reqs_total") != c {
		t.Error("Counter is not idempotent get-or-create")
	}
	g := r.Gauge("open_conns")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 99, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5125 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	b := h.Buckets()
	// cumulative: le=10 -> 2, le=100 -> 4, le=1000 -> 4, +Inf -> 5
	want := []int64{2, 4, 4, 5}
	for i, bc := range b {
		if bc.Count != want[i] {
			t.Errorf("bucket %d: count=%d want %d", i, bc.Count, want[i])
		}
	}
	if b[len(b)-1].Bound != -1 {
		t.Error("last bucket must be +Inf (bound -1)")
	}

	snap := r.Snapshot()
	if snap.Histograms["lat_ns"].Count != 5 {
		t.Errorf("snapshot count = %d", snap.Histograms["lat_ns"].Count)
	}
	r.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("reset did not zero histogram")
	}
}

func TestResetPreservesIdentity(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(3)
	r.Reset()
	if c.Value() != 0 {
		t.Error("reset did not zero counter")
	}
	c.Inc()
	if r.Counter("x").Value() != 1 {
		t.Error("counter identity lost across reset")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("h", DurationBuckets)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestPrometheusAndJSONOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Gauge("b").Set(-3)
	r.Histogram("c_ns", []int64{100}).Observe(50)

	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		"# TYPE a_total counter", "a_total 2",
		"# TYPE b gauge", "b -3",
		"# TYPE c_ns histogram", `c_ns_bucket{le="100"} 1`, `c_ns_bucket{le="+Inf"} 1`,
		"c_ns_sum 50", "c_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}

	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"a_total": 2`, `"counters"`, `"histograms"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("json output missing %q:\n%s", want, js.String())
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
