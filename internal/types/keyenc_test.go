package types

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// TestKeyOrderPreservation is the invariant the B-tree and MDI depend on:
// bytes.Compare(KeyOf(a), KeyOf(b)) must have the same sign as Compare(a,b)
// for values of the same comparison class.
func TestKeyOrderPreservationInts(t *testing.T) {
	f := func(a, b int64) bool {
		sign := func(x int) int {
			switch {
			case x < 0:
				return -1
			case x > 0:
				return 1
			}
			return 0
		}
		// Int precision above 2^53 folds through float64; restrict to the
		// exact range (documented behavior — Compare also goes via Float).
		a %= 1 << 52
		b %= 1 << 52
		va, vb := NewInt(a), NewInt(b)
		return sign(bytes.Compare(KeyOf(va), KeyOf(vb))) == sign(Compare(va, vb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyOrderPreservationFloats(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		sign := func(x int) int {
			switch {
			case x < 0:
				return -1
			case x > 0:
				return 1
			}
			return 0
		}
		va, vb := NewFloat(a), NewFloat(b)
		return sign(bytes.Compare(KeyOf(va), KeyOf(vb))) == sign(Compare(va, vb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyOrderPreservationText(t *testing.T) {
	f := func(a, b string) bool {
		sign := func(x int) int {
			switch {
			case x < 0:
				return -1
			case x > 0:
				return 1
			}
			return 0
		}
		va, vb := NewText(a), NewText(b)
		return sign(bytes.Compare(KeyOf(va), KeyOf(vb))) == sign(Compare(va, vb))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyCrossKindNumeric(t *testing.T) {
	// INT and FLOAT share the numeric class: 2 < 2.5 < 3.
	keys := [][]byte{
		KeyOf(NewInt(2)),
		KeyOf(NewFloat(2.5)),
		KeyOf(NewInt(3)),
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Errorf("cross-kind numeric ordering broken at %d", i)
		}
	}
	if !bytes.Equal(KeyOf(NewInt(7)), KeyOf(NewFloat(7))) {
		t.Error("7 and 7.0 must encode identically")
	}
}

func TestKeyClassSeparation(t *testing.T) {
	// NULL < BOOL < numeric < text, mirroring Compare's class rules.
	ordered := [][]byte{
		KeyOf(Null()),
		KeyOf(NewBool(false)),
		KeyOf(NewBool(true)),
		KeyOf(NewFloat(math.Inf(-1))),
		KeyOf(NewInt(0)),
		KeyOf(NewFloat(math.Inf(1))),
		KeyOf(NewText("")),
		KeyOf(NewText("z")),
	}
	for i := 1; i < len(ordered); i++ {
		if bytes.Compare(ordered[i-1], ordered[i]) >= 0 {
			t.Errorf("class ordering broken at %d", i)
		}
	}
}

func TestKeyUniTextUsesTextComponent(t *testing.T) {
	a := KeyOf(NewUniText(Compose("same", LangTamil)))
	b := KeyOf(NewText("same"))
	if !bytes.Equal(a, b) {
		t.Error("UNITEXT keys must encode the Text component only (Compare orders by text)")
	}
}

func TestEncodeKeyAppends(t *testing.T) {
	prefix := []byte("prefix")
	out := EncodeKey(prefix, NewInt(1))
	if !bytes.HasPrefix(out, prefix) {
		t.Error("EncodeKey must append to dst")
	}
}
