package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Slotted-page heap file. Each page payload is laid out as:
//
//	[0:2)  slotCount  uint16
//	[2:4)  freeStart  uint16  — end of the slot array
//	[4:6)  freeEnd    uint16  — start of the tuple data region
//	[6:..) slot array — per slot: offset uint16, length uint16
//	...    free space
//	[freeEnd:PagePayload) tuple bytes, growing downward
//
// A dead (deleted) slot has offset == deadSlot. Offsets address the page
// payload region.
const (
	heapHeaderSize = 6
	slotSize       = 4
	deadSlot       = uint16(0xFFFF)
)

// MaxRecordSize is the largest record a heap page can hold.
const MaxRecordSize = PagePayload - heapHeaderSize - slotSize

// RID is a record identifier: page number plus slot index.
type RID struct {
	Page PageID
	Slot uint16
}

// String renders the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// Heap is a heap file of variable-length records stored in slotted pages of
// one buffer-pool file. Writers are serialized by an internal mutex;
// readers may proceed concurrently with other readers.
type Heap struct {
	pool *Pool
	file FileID

	mu sync.RWMutex
	// spacePage is a cursor to the page most likely to accept an insert; it
	// avoids rescanning the file per insert without maintaining a full
	// free-space map.
	spacePage PageID
	numPages  PageID
	numRecs   int64
}

// OpenHeap opens the heap stored in file (which must already be attached to
// the pool), scanning existing pages to rebuild the record count.
func OpenHeap(pool *Pool, file FileID) (*Heap, error) {
	h := &Heap{pool: pool, file: file, spacePage: InvalidPageID}
	np, err := pool.DiskPages(file)
	if err != nil {
		return nil, fmt.Errorf("storage: heap: %w", err)
	}
	h.numPages = np
	for pid := PageID(0); pid < h.numPages; pid++ {
		hd, err := pool.Pin(PageKey{File: file, Page: pid})
		if err != nil {
			return nil, err
		}
		data := hd.Data()
		nslots := binary.LittleEndian.Uint16(data[0:2])
		for s := uint16(0); s < nslots; s++ {
			off := binary.LittleEndian.Uint16(data[heapHeaderSize+int(s)*slotSize:])
			if off != deadSlot {
				h.numRecs++
			}
		}
		hd.Unpin()
	}
	if h.numPages > 0 {
		h.spacePage = h.numPages - 1
	}
	return h, nil
}

// NumRecords returns the live record count.
func (h *Heap) NumRecords() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.numRecs
}

// NumPages returns the allocated page count (the P quantity of Table 2).
func (h *Heap) NumPages() PageID {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.numPages
}

// Insert appends a record and returns its RID.
func (h *Heap) Insert(rec []byte) (RID, error) {
	if len(rec) > MaxRecordSize {
		return RID{}, fmt.Errorf("storage: record of %d bytes exceeds max %d", len(rec), MaxRecordSize)
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	// Try the cursor page first, then allocate.
	if h.spacePage != InvalidPageID {
		if rid, ok, err := h.tryInsert(h.spacePage, rec); err != nil {
			return RID{}, err
		} else if ok {
			h.numRecs++
			return rid, nil
		}
	}
	hd, err := h.pool.NewPage(h.file)
	if err != nil {
		return RID{}, err
	}
	initHeapPage(hd.Data())
	hd.MarkDirty()
	pid := hd.Key().Page
	hd.Unpin()
	h.numPages++
	h.spacePage = pid
	rid, ok, err := h.tryInsert(pid, rec)
	if err != nil {
		return RID{}, err
	}
	if !ok {
		return RID{}, fmt.Errorf("storage: fresh page rejected %d-byte record", len(rec))
	}
	h.numRecs++
	return rid, nil
}

func initHeapPage(data []byte) {
	binary.LittleEndian.PutUint16(data[0:2], 0)
	binary.LittleEndian.PutUint16(data[2:4], heapHeaderSize)
	binary.LittleEndian.PutUint16(data[4:6], uint16(PagePayload))
}

// tryInsert attempts to place rec on page pid. Called with h.mu held.
func (h *Heap) tryInsert(pid PageID, rec []byte) (RID, bool, error) {
	hd, err := h.pool.Pin(PageKey{File: h.file, Page: pid})
	if err != nil {
		return RID{}, false, err
	}
	defer hd.Unpin()
	data := hd.Data()
	nslots := binary.LittleEndian.Uint16(data[0:2])
	freeStart := binary.LittleEndian.Uint16(data[2:4])
	freeEnd := binary.LittleEndian.Uint16(data[4:6])
	if freeStart == 0 && freeEnd == 0 {
		// Page never initialized (file grown out-of-band): initialize now.
		initHeapPage(data)
		freeStart = heapHeaderSize
		freeEnd = uint16(PagePayload)
	}
	need := len(rec) + slotSize
	if int(freeEnd)-int(freeStart) < need {
		return RID{}, false, nil
	}
	off := freeEnd - uint16(len(rec))
	copy(data[off:], rec)
	slotOff := freeStart
	binary.LittleEndian.PutUint16(data[slotOff:], off)
	binary.LittleEndian.PutUint16(data[slotOff+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(data[0:2], nslots+1)
	binary.LittleEndian.PutUint16(data[2:4], freeStart+slotSize)
	binary.LittleEndian.PutUint16(data[4:6], off)
	hd.MarkDirty()
	return RID{Page: pid, Slot: nslots}, true, nil
}

// Get returns a copy of the record at rid.
func (h *Heap) Get(rid RID) ([]byte, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	hd, err := h.pool.Pin(PageKey{File: h.file, Page: rid.Page})
	if err != nil {
		return nil, err
	}
	defer hd.Unpin()
	data := hd.Data()
	nslots := binary.LittleEndian.Uint16(data[0:2])
	if rid.Slot >= nslots {
		return nil, fmt.Errorf("storage: get %v: no such slot", rid)
	}
	off := binary.LittleEndian.Uint16(data[heapHeaderSize+int(rid.Slot)*slotSize:])
	if off == deadSlot {
		return nil, fmt.Errorf("storage: get %v: record deleted", rid)
	}
	length := binary.LittleEndian.Uint16(data[heapHeaderSize+int(rid.Slot)*slotSize+2:])
	out := make([]byte, length)
	copy(out, data[off:off+length])
	return out, nil
}

// Delete marks the record at rid dead. The space is not compacted; the
// paper's workloads are append-then-query, so vacuuming is out of scope.
func (h *Heap) Delete(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	hd, err := h.pool.Pin(PageKey{File: h.file, Page: rid.Page})
	if err != nil {
		return err
	}
	defer hd.Unpin()
	data := hd.Data()
	nslots := binary.LittleEndian.Uint16(data[0:2])
	if rid.Slot >= nslots {
		return fmt.Errorf("storage: delete %v: no such slot", rid)
	}
	slotOff := heapHeaderSize + int(rid.Slot)*slotSize
	if binary.LittleEndian.Uint16(data[slotOff:]) == deadSlot {
		return fmt.Errorf("storage: delete %v: already deleted", rid)
	}
	binary.LittleEndian.PutUint16(data[slotOff:], deadSlot)
	hd.MarkDirty()
	h.numRecs--
	return nil
}

// Iter is a forward scan over all live records of the heap.
type Iter struct {
	h      *Heap
	page   PageID
	slot   uint16
	nslots uint16
	npages PageID
}

// Scan returns an iterator positioned before the first record.
func (h *Heap) Scan() *Iter {
	h.mu.RLock()
	np := h.numPages
	h.mu.RUnlock()
	return &Iter{h: h, page: 0, slot: 0, nslots: 0, npages: np}
}

// ScanRange returns an iterator over the live records of pages [lo, hi):
// one morsel of a parallel scan. The bounds are clamped to the heap's
// current page count, so a caller partitioning a stale count stays safe.
func (h *Heap) ScanRange(lo, hi PageID) *Iter {
	h.mu.RLock()
	np := h.numPages
	h.mu.RUnlock()
	if hi > np {
		hi = np
	}
	if lo > hi {
		lo = hi
	}
	return &Iter{h: h, page: lo, slot: 0, nslots: 0, npages: hi}
}

// NextPage processes one heap page of the scan: it pins the scan's current
// page, invokes fn once per live record on it, unpins and advances to the
// next page. more=false reports that the scan was already exhausted (fn was
// not called). The rec slice passed to fn aliases the pinned page buffer —
// it is only valid during fn and must be copied to be retained; fn must not
// pin pages of the same pool itself. An fn error stops the page mid-way
// (more stays true) and surfaces verbatim. NextPage and Next may be mixed:
// both respect the scan's current page/slot position.
func (it *Iter) NextPage(fn func(rec []byte) error) (more bool, err error) {
	if it.page >= it.npages {
		return false, nil
	}
	hd, err := it.h.pool.Pin(PageKey{File: it.h.file, Page: it.page})
	if err != nil {
		return false, err
	}
	data := hd.Data()
	nslots := binary.LittleEndian.Uint16(data[0:2])
	for s := it.slot; s < nslots; s++ {
		slotOff := heapHeaderSize + int(s)*slotSize
		off := binary.LittleEndian.Uint16(data[slotOff:])
		if off == deadSlot {
			continue
		}
		length := binary.LittleEndian.Uint16(data[slotOff+2:])
		if err := fn(data[off : off+length]); err != nil {
			hd.Unpin()
			return true, err
		}
	}
	hd.Unpin()
	it.page++
	it.slot = 0
	return true, nil
}

// Next returns the next live record, its RID, and whether one was found.
// The returned slice is a copy owned by the caller.
func (it *Iter) Next() (RID, []byte, bool, error) {
	for {
		if it.page >= it.npages {
			return RID{}, nil, false, nil
		}
		hd, err := it.h.pool.Pin(PageKey{File: it.h.file, Page: it.page})
		if err != nil {
			return RID{}, nil, false, err
		}
		data := hd.Data()
		nslots := binary.LittleEndian.Uint16(data[0:2])
		for ; it.slot < nslots; it.slot++ {
			slotOff := heapHeaderSize + int(it.slot)*slotSize
			off := binary.LittleEndian.Uint16(data[slotOff:])
			if off == deadSlot {
				continue
			}
			length := binary.LittleEndian.Uint16(data[slotOff+2:])
			rec := make([]byte, length)
			copy(rec, data[off:off+length])
			rid := RID{Page: it.page, Slot: it.slot}
			it.slot++
			hd.Unpin()
			return rid, rec, true, nil
		}
		hd.Unpin()
		it.page++
		it.slot = 0
	}
}
