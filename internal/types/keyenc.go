package types

import (
	"encoding/binary"
	"math"
)

// Order-preserving key encoding for index keys: for any two values a, b of
// the same comparison class, bytes.Compare(EncodeKey(a), EncodeKey(b)) has
// the same sign as Compare(a, b). The B-tree and the MDI index both rely on
// this property.
//
// Layout: a class tag byte (so NULL < bool < numeric < text holds across
// kinds), followed by a class-specific payload:
//
//	NULL:    tag only
//	BOOL:    tag, 0/1
//	numeric: tag, 8-byte big-endian IEEE-754 with sign-flip trick
//	text:    tag, raw bytes (UNITEXT encodes its Text component, since
//	         Compare orders UNITEXT by text only)
const (
	keyTagNull    = 0x10
	keyTagBool    = 0x20
	keyTagNumeric = 0x30
	keyTagText    = 0x40
)

// EncodeKey appends the order-preserving encoding of v to dst.
func EncodeKey(dst []byte, v Value) []byte {
	switch v.Kind() {
	case KindNull:
		return append(dst, keyTagNull)
	case KindBool:
		dst = append(dst, keyTagBool)
		if v.Bool() {
			return append(dst, 1)
		}
		return append(dst, 0)
	case KindInt, KindFloat:
		dst = append(dst, keyTagNumeric)
		bits := math.Float64bits(v.Float())
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip all bits
		} else {
			bits |= 1 << 63 // non-negative: flip the sign bit
		}
		return binary.BigEndian.AppendUint64(dst, bits)
	case KindText, KindUniText:
		dst = append(dst, keyTagText)
		return append(dst, v.Text()...)
	default:
		panic("types: EncodeKey: unreachable kind")
	}
}

// KeyOf is the single-value convenience form of EncodeKey.
func KeyOf(v Value) []byte { return EncodeKey(nil, v) }
