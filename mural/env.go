package mural

import (
	"fmt"

	"github.com/mural-db/mural/internal/exec"
	"github.com/mural-db/mural/internal/phonetic"
	"github.com/mural-db/mural/internal/storage"
	"github.com/mural-db/mural/internal/types"
	"github.com/mural-db/mural/internal/wordnet"
)

// The Engine implements exec.Env: all executor data access lands here.

// heapScanIter adapts a heap scan to exec.TupleIter, decoding records.
type heapScanIter struct {
	it *storage.Iter
}

// Next implements exec.TupleIter.
func (h *heapScanIter) Next() (types.Tuple, bool, error) {
	_, rec, ok, err := h.it.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	tup, _, err := types.DecodeTuple(rec)
	if err != nil {
		return nil, false, err
	}
	return tup, true, nil
}

// Close implements exec.TupleIter.
func (h *heapScanIter) Close() error { return nil }

// ScanTable implements exec.Env.
func (e *Engine) ScanTable(table string) (exec.TupleIter, error) {
	e.mu.RLock()
	h := e.heaps[table]
	e.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("mural: no such table %q", table)
	}
	return &heapScanIter{it: h.Scan()}, nil
}

// TablePages implements exec.Env.
func (e *Engine) TablePages(table string) (int64, error) {
	e.mu.RLock()
	h := e.heaps[table]
	e.mu.RUnlock()
	if h == nil {
		return 0, fmt.Errorf("mural: no such table %q", table)
	}
	return int64(h.NumPages()), nil
}

// ScanTablePages implements exec.Env: one morsel of a parallel scan.
func (e *Engine) ScanTablePages(table string, lo, hi int64) (exec.TupleIter, error) {
	e.mu.RLock()
	h := e.heaps[table]
	e.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("mural: no such table %q", table)
	}
	return &heapScanIter{it: h.ScanRange(storage.PageID(lo), storage.PageID(hi))}, nil
}

// recordScan adapts a heap iterator to exec.RecordScan: the raw-record,
// page-at-a-time feed behind the executor's vectorized and fused scans.
type recordScan struct {
	it *storage.Iter
}

// NextPage implements exec.RecordScan.
func (r *recordScan) NextPage(fn func(rec []byte) error) (bool, error) {
	return r.it.NextPage(fn)
}

// Close implements exec.RecordScan.
func (r *recordScan) Close() error { return nil }

// ScanRecords implements exec.RecordScanner: raw records of heap pages
// [lo, hi).
func (e *Engine) ScanRecords(table string, lo, hi int64) (exec.RecordScan, error) {
	e.mu.RLock()
	h := e.heaps[table]
	e.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("mural: no such table %q", table)
	}
	return &recordScan{it: h.ScanRange(storage.PageID(lo), storage.PageID(hi))}, nil
}

// FetchRIDs implements exec.Env.
func (e *Engine) FetchRIDs(table string, rids []storage.RID) ([]types.Tuple, error) {
	e.mu.RLock()
	h := e.heaps[table]
	if h != nil {
		// Pin while still under the read lock: a DROP TABLE that has not yet
		// removed the heap entry will wait for this fetch before it releases
		// the heap's disk (see pinSet).
		e.pins.pin(table)
		defer e.pins.unpin(table)
	}
	e.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("mural: no such table %q", table)
	}
	out := make([]types.Tuple, 0, len(rids))
	for _, rid := range rids {
		rec, err := h.Get(rid)
		if err != nil {
			return nil, err
		}
		tup, _, err := types.DecodeTuple(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, tup)
	}
	return out, nil
}

// IndexSearch implements exec.Env (B-tree range probe).
func (e *Engine) IndexSearch(index string, lo, hi []byte) ([]storage.RID, int, error) {
	e.mu.RLock()
	bt := e.btrees[index]
	if bt != nil {
		e.pins.pin(index)
		defer e.pins.unpin(index)
	}
	e.mu.RUnlock()
	if bt == nil {
		return nil, 0, fmt.Errorf("mural: no such btree index %q", index)
	}
	var rids []storage.RID
	pages, err := bt.RangeCount(lo, hi, func(_ []byte, rid storage.RID) bool {
		rids = append(rids, rid)
		return true
	})
	return rids, pages, err
}

// MTreeSearch implements exec.Env.
func (e *Engine) MTreeSearch(index string, phoneme string, threshold int) ([]storage.RID, int, error) {
	e.mu.RLock()
	mt := e.mtrees[index]
	if mt != nil {
		// The handle escapes the read lock for the duration of the probe; the
		// pin keeps a concurrent DROP INDEX from detaching its file under it.
		e.pins.pin(index)
		defer e.pins.unpin(index)
	}
	e.mu.RUnlock()
	if mt == nil {
		return nil, 0, fmt.Errorf("mural: no such mtree index %q", index)
	}
	return mt.RangeSearch(phoneme, threshold)
}

// MDISearch implements exec.Env.
func (e *Engine) MDISearch(index string, phoneme string, threshold int) ([]storage.RID, int, int, error) {
	e.mu.RLock()
	md := e.mdis[index]
	if md != nil {
		e.pins.pin(index)
		defer e.pins.unpin(index)
	}
	e.mu.RUnlock()
	if md == nil {
		return nil, 0, 0, fmt.Errorf("mural: no such mdi index %q", index)
	}
	return md.RangeSearch(phoneme, threshold)
}

// QGramSearch implements exec.Env.
func (e *Engine) QGramSearch(index string, phoneme string, threshold int) ([]storage.RID, int, error) {
	e.mu.RLock()
	qg := e.qgrams[index]
	if qg != nil {
		e.pins.pin(index)
		defer e.pins.unpin(index)
	}
	e.mu.RUnlock()
	if qg == nil {
		return nil, 0, fmt.Errorf("mural: no such qgram index %q", index)
	}
	rids, st, err := qg.RangeSearch(phoneme, threshold)
	return rids, st.Candidates, err
}

// Phonetic implements exec.Env.
func (e *Engine) Phonetic() *phonetic.Registry { return e.phon }

// Semantic implements exec.Env.
func (e *Engine) Semantic() *wordnet.Matcher {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.matcher
}
