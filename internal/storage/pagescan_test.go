package storage

import (
	"errors"
	"fmt"
	"testing"
)

// drainPages collects every record seen through NextPage, copying since the
// callback views alias the pinned page.
func drainPages(t *testing.T, it *Iter) []string {
	t.Helper()
	var out []string
	for {
		more, err := it.NextPage(func(rec []byte) error {
			out = append(out, string(rec))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			return out
		}
	}
}

// NextPage must see exactly the records Next sees, in the same order —
// including skipping deleted slots and respecting ScanRange bounds.
func TestHeapNextPageMatchesNext(t *testing.T) {
	pool, file := newTestPool(t, 16)
	h, err := OpenHeap(pool, file)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	var rids []RID
	for i := 0; i < n; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("rec-%04d-%s", i, string(make([]byte, 120)))))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for _, i := range []int{0, 7, 150, n - 1} {
		if err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	np := h.NumPages()
	if np < 3 {
		t.Fatalf("need a multi-page heap, got %d pages", np)
	}

	want := drainRange(t, h.Scan())
	got := drainPages(t, h.Scan())
	if len(got) != len(want) {
		t.Fatalf("NextPage saw %d records, Next saw %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: NextPage %q, Next %q", i, got[i], want[i])
		}
	}

	// A page-range morsel through NextPage equals the same morsel via Next.
	wantM := drainRange(t, h.ScanRange(1, 3))
	gotM := drainPages(t, h.ScanRange(1, 3))
	if fmt.Sprint(gotM) != fmt.Sprint(wantM) {
		t.Errorf("morsel mismatch: NextPage %d records, Next %d", len(gotM), len(wantM))
	}
}

// An fn error surfaces verbatim and leaves no pin behind (the scan can be
// abandoned safely).
func TestHeapNextPageCallbackError(t *testing.T) {
	pool, file := newTestPool(t, 8)
	h, err := OpenHeap(pool, file)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := h.Insert([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	it := h.Scan()
	more, err := it.NextPage(func(rec []byte) error { return boom })
	if !errors.Is(err, boom) || !more {
		t.Fatalf("NextPage = (%v, %v), want (true, boom)", more, err)
	}
	// The page is unpinned: a fresh full scan still works.
	if got := drainPages(t, h.Scan()); len(got) != 5 {
		t.Errorf("follow-up scan saw %d records, want 5", len(got))
	}
}

// NextPage on an exhausted or empty scan reports more=false without calling
// fn.
func TestHeapNextPageExhausted(t *testing.T) {
	pool, file := newTestPool(t, 8)
	h, err := OpenHeap(pool, file)
	if err != nil {
		t.Fatal(err)
	}
	it := h.Scan()
	more, err := it.NextPage(func([]byte) error {
		t.Error("fn called on an empty heap")
		return nil
	})
	if more || err != nil {
		t.Fatalf("empty heap NextPage = (%v, %v), want (false, nil)", more, err)
	}
}
