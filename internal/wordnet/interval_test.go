package wordnet

import (
	"math/rand"
	"testing"

	"github.com/mural-db/mural/internal/types"
)

func TestIntervalIndexAgreesWithClosure(t *testing.T) {
	net := Generate(Config{Synsets: 8000, Seed: 17})
	ix := NewIntervalIndex(net)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		root := SynsetID(rng.Intn(net.NumSynsets()))
		closure := net.Closure(root)
		if got := ix.ClosureSize(root); got != len(closure) {
			t.Fatalf("root %d: interval size %d, closure %d", root, got, len(closure))
		}
		enum := ix.Closure(root)
		if len(enum) != len(closure) {
			t.Fatalf("root %d: enumeration length %d", root, len(enum))
		}
		for _, id := range enum {
			if _, in := closure[id]; !in {
				t.Fatalf("root %d: enumerated %d not in closure", root, id)
			}
		}
		// Membership spot checks, positive and negative.
		for probe := 0; probe < 200; probe++ {
			node := SynsetID(rng.Intn(net.NumSynsets()))
			_, want := closure[node]
			if got := ix.Contains(node, root); got != want {
				t.Fatalf("Contains(%d, %d) = %v, want %v", node, root, got, want)
			}
		}
	}
}

func TestIntervalIndexWholeTree(t *testing.T) {
	net := Generate(Config{Synsets: 500, Seed: 2})
	ix := NewIntervalIndex(net)
	if ix.ClosureSize(0) != net.NumSynsets() {
		t.Errorf("root closure = %d", ix.ClosureSize(0))
	}
	// A leaf contains only itself.
	for id := net.NumSynsets() - 1; id >= 0; id-- {
		if len(net.Children(SynsetID(id))) == 0 {
			if ix.ClosureSize(SynsetID(id)) != 1 {
				t.Errorf("leaf %d closure = %d", id, ix.ClosureSize(SynsetID(id)))
			}
			break
		}
	}
}

func BenchmarkClosureMembershipHash(b *testing.B) {
	net := Generate(Config{Synsets: 50000, Seed: 2})
	cache := NewClosureCache(net)
	root := net.FindClosureOfSize(5000)
	cache.Closure(root) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.Contains(SynsetID(i%50000), root)
	}
}

func BenchmarkClosureMembershipInterval(b *testing.B) {
	net := Generate(Config{Synsets: 50000, Seed: 2})
	ix := NewIntervalIndex(net)
	root := net.FindClosureOfSize(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Contains(SynsetID(i%50000), root)
	}
}

var _ = types.LangEnglish
