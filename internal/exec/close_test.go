package exec

import (
	"errors"
	"testing"

	"github.com/mural-db/mural/internal/plan"
	"github.com/mural-db/mural/internal/types"
)

// trackIter wraps a child iterator and records Close calls; closeErr is
// returned from Close to test error propagation.
type trackIter struct {
	TupleIter
	closed   bool
	closeErr error
}

func (t *trackIter) Close() error {
	t.closed = true
	return t.closeErr
}

// closeTrackEnv wraps mockEnv so every ScanTable iterator is tracked.
type closeTrackEnv struct {
	*mockEnv
	tracked []*trackIter
}

func (e *closeTrackEnv) ScanTable(table string) (TupleIter, error) {
	it, err := e.mockEnv.ScanTable(table)
	if err != nil {
		return nil, err
	}
	t := &trackIter{TupleIter: it}
	e.tracked = append(e.tracked, t)
	return t, nil
}

// A join builder whose right child fails to build must close the left
// child it already opened, not leak it.
func TestJoinBuildersCloseLeftOnRightFailure(t *testing.T) {
	ops := []plan.OpType{plan.OpNLJoin, plan.OpHashJoin, plan.OpPsiJoin, plan.OpOmegaJoin}
	for _, op := range ops {
		env := &closeTrackEnv{mockEnv: newMockEnv()}
		env.tables["l"] = []types.Tuple{{types.NewInt(1)}}
		// "r" is absent: building the right child fails after the left
		// child's iterator is live.
		n := &plan.Node{
			Op: op,
			Children: []*plan.Node{
				{Op: plan.OpSeqScan, Table: "l"},
				{Op: plan.OpSeqScan, Table: "r"},
			},
		}
		ev := &evaluator{env: env, stats: &RunStats{}}
		if _, err := build(env, ev, n); err == nil {
			t.Fatalf("%s: expected build error for missing right table", op)
		}
		if len(env.tracked) != 1 {
			t.Fatalf("%s: expected exactly one live child iterator, got %d", op, len(env.tracked))
		}
		if !env.tracked[0].closed {
			t.Errorf("%s: left child iterator leaked when right build failed", op)
		}
	}
}

func TestNLJoinClosePropagatesOuterError(t *testing.T) {
	outerErr := errors.New("outer close failed")
	j := &nlJoinIter{
		outer: &trackIter{TupleIter: &sliceIter{}, closeErr: outerErr},
		inner: asRewindable(nil, &trackIter{TupleIter: &sliceIter{}}),
	}
	if err := j.Close(); !errors.Is(err, outerErr) {
		t.Fatalf("nlJoinIter.Close dropped the outer iterator's error: got %v", err)
	}
}

func TestHashJoinClosePropagatesProbeError(t *testing.T) {
	probeErr := errors.New("probe close failed")
	j := &hashJoinIter{
		probe:    &trackIter{TupleIter: &sliceIter{}, closeErr: probeErr},
		buildSrc: &trackIter{TupleIter: &sliceIter{}},
	}
	if err := j.Close(); !errors.Is(err, probeErr) {
		t.Fatalf("hashJoinIter.Close dropped the probe iterator's error: got %v", err)
	}
}

func TestCursorAllPropagatesCloseError(t *testing.T) {
	closeErr := errors.New("close failed")
	c := &Cursor{it: &trackIter{TupleIter: &sliceIter{}, closeErr: closeErr}}
	if _, err := c.All(); !errors.Is(err, closeErr) {
		t.Fatalf("Cursor.All dropped the close error: got %v", err)
	}
}
