// Package storage implements the on-disk substrate of the engine: fixed-size
// pages managed by disk managers, a shared buffer pool with clock eviction
// and CRC-verified page images, and slotted-page heap files addressed by
// record identifiers. The cost models of the paper's Table 3 are stated in
// terms of page counts and page I/Os; this layer is what makes those
// quantities real in the reproduction.
package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// PageSize is the size of every on-disk page in bytes (PostgreSQL's 8 KiB).
const PageSize = 8192

// PageID identifies a page within one disk file. Pages are numbered from 0.
type PageID uint32

// InvalidPageID marks the absence of a page.
const InvalidPageID = PageID(0xFFFFFFFF)

// Disk is the page-granular storage abstraction under the buffer pool.
// Implementations must be safe for concurrent use.
type Disk interface {
	// ReadPage fills buf (len PageSize) with the content of page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (len PageSize) as the content of page id.
	WritePage(id PageID, buf []byte) error
	// Allocate extends the file by one zeroed page and returns its id.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() PageID
	// Sync flushes any buffered writes to stable storage.
	Sync() error
	// Close releases the underlying resources.
	Close() error
}

// FileDisk is a Disk backed by a single operating-system file.
type FileDisk struct {
	mu    sync.Mutex
	f     *os.File
	pages PageID
}

// OpenFileDisk opens (or creates) the file at path as a page store.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open disk %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("storage: stat disk %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		_ = f.Close()
		return nil, fmt.Errorf("storage: disk %s has torn size %d", path, st.Size())
	}
	return &FileDisk{f: f, pages: PageID(st.Size() / PageSize)}, nil
}

// ReadPage implements Disk.
func (d *FileDisk) ReadPage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id >= d.pages {
		return fmt.Errorf("storage: read page %d beyond end (%d pages)", id, d.pages)
	}
	n, err := d.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	if err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	if n < PageSize {
		// Short read at the end of a file that lost its tail (crash between
		// metadata and data flush): zero-fill so no stale caller bytes leak
		// through as page content.
		for i := n; i < PageSize; i++ {
			buf[i] = 0
		}
	}
	return nil
}

// WritePage implements Disk.
func (d *FileDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id >= d.pages {
		return fmt.Errorf("storage: write page %d beyond end (%d pages)", id, d.pages)
	}
	if _, err := d.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Allocate implements Disk.
func (d *FileDisk) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.pages
	var zero [PageSize]byte
	if _, err := d.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	d.pages++
	return id, nil
}

// NumPages implements Disk.
func (d *FileDisk) NumPages() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

// Sync implements Disk.
func (d *FileDisk) Sync() error { return d.f.Sync() }

// Close implements Disk.
func (d *FileDisk) Close() error { return d.f.Close() }

// MemDisk is an in-memory Disk used by tests and by callers that want an
// ephemeral database (the benchmark harness uses it to isolate CPU costs
// from the filesystem).
type MemDisk struct {
	mu    sync.Mutex
	pages [][]byte
}

// NewMemDisk returns an empty in-memory disk.
func NewMemDisk() *MemDisk { return &MemDisk{} }

// ReadPage implements Disk.
func (d *MemDisk) ReadPage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: read page %d beyond end (%d pages)", id, len(d.pages))
	}
	copy(buf[:PageSize], d.pages[id])
	return nil
}

// WritePage implements Disk.
func (d *MemDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: write page %d beyond end (%d pages)", id, len(d.pages))
	}
	copy(d.pages[id], buf[:PageSize])
	return nil
}

// Allocate implements Disk.
func (d *MemDisk) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pages = append(d.pages, make([]byte, PageSize))
	return PageID(len(d.pages) - 1), nil
}

// NumPages implements Disk.
func (d *MemDisk) NumPages() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return PageID(len(d.pages))
}

// Sync implements Disk.
func (d *MemDisk) Sync() error { return nil }

// Close implements Disk.
func (d *MemDisk) Close() error { return nil }
