package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/mural-db/mural/mural"
)

// ObserveOverheadConfig parameterizes the observability overhead
// measurement.
type ObserveOverheadConfig struct {
	Names     int
	Threshold int
	// Queries bounds how many Ψ scan queries each pass averages over.
	Queries int
	// Rounds is how many timed passes each engine takes (the minimum is
	// reported, robust to scheduling noise).
	Rounds int
	Seed   int64
}

// ObserveOverheadResult compares the Table 4 Ψ scan on an engine with every
// observation path disabled (statement statistics and feedback off, no
// trace sink) against the same scan with the full observability layer armed:
// statement-statistics recording, feedback folding on governed runs, and a
// trace writer with a low sampling rate — the always-on production shape.
type ObserveOverheadResult struct {
	BaselineSec float64
	ObservedSec float64
	// OverheadPct is (observed - baseline) / baseline * 100.
	OverheadPct float64
	// Matches sanity-checks both engines computed the same answer.
	Matches int64
	// Statements is how many aggregates the observed engine held afterwards
	// (proof the collection path actually ran during the timed passes).
	Statements int
}

// RunObserveOverhead measures what always-on observability costs on the
// paper's Ψ scan workload. Two engines load the identical dataset (same
// seed): the baseline one with collection disabled, the observed one with
// statement statistics, selectivity feedback, and a sampling tracer writing
// to io.Discard. Both run governed (ten-minute timeout, never fires) so the
// observed engine exercises its full path — counts collectors, feedback
// folding, fingerprinting, cache-delta snapshots. The M-Tree is disabled so
// both take the in-kernel scan plan and feedback cannot flip one engine onto
// a different plan mid-measurement. Rounds interleave the two engines with
// the order flipped each round; the minimum round per engine is reported.
func RunObserveOverhead(cfg ObserveOverheadConfig) (*ObserveOverheadResult, error) {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 5
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 25
	}
	newDB := func(tune func(*mural.Config)) (*NamesDB, error) {
		return NewNamesDB(NamesConfig{
			Names: cfg.Names, ProbeNames: 10, Seed: cfg.Seed, Tune: tune,
		})
	}
	base, err := newDB(func(c *mural.Config) {
		c.StmtStatsEntries = -1
		c.FeedbackEntries = -1
	})
	if err != nil {
		return nil, err
	}
	defer base.Close()
	obsDB, err := newDB(func(c *mural.Config) {
		// Statement statistics and feedback default on; arm the tracer at a
		// production-shaped sampling rate.
		c.TraceSink = io.Discard
		c.TraceSampleRate = 0.01
	})
	if err != nil {
		return nil, err
	}
	defer obsDB.Close()

	queries := base.Queries
	if len(queries) > cfg.Queries {
		queries = queries[:cfg.Queries]
	}
	for _, db := range []*NamesDB{base, obsDB} {
		for _, s := range []string{`SET enable_mtree = off`, `SET statement_timeout = 600000`} {
			if _, err := db.Eng.Exec(s); err != nil {
				return nil, err
			}
		}
	}

	pass := func(db *NamesDB) (time.Duration, int64, error) {
		var total time.Duration
		var matches int64
		for _, q := range queries {
			res, err := db.Eng.Exec(fmt.Sprintf(
				`SELECT count(*) FROM names WHERE name LEXEQUAL %s THRESHOLD %d`, quote(q.Text), cfg.Threshold))
			if err != nil {
				return 0, 0, err
			}
			total += res.Elapsed
			matches += res.Rows[0][0].Int()
		}
		return total, matches, nil
	}

	// Warm both engines untimed: caches fill, the observed engine's feedback
	// cells establish (and re-key its plan cache once) before timing starts.
	for _, db := range []*NamesDB{base, obsDB} {
		if _, _, err := pass(db); err != nil {
			return nil, err
		}
	}

	// The two engines are timed back-to-back within every round, order
	// flipped each round, so background load and frequency drift hit both
	// equally; the minimum round per engine is robust to load spikes.
	var minBase, minObs time.Duration = -1, -1
	var baseMatches, obsMatches int64
	for r := 0; r < cfg.Rounds; r++ {
		order := []*NamesDB{base, obsDB}
		if r%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, db := range order {
			d, m, err := pass(db)
			if err != nil {
				return nil, err
			}
			if db == base {
				if minBase < 0 || d < minBase {
					minBase = d
				}
				baseMatches = m
			} else {
				if minObs < 0 || d < minObs {
					minObs = d
				}
				obsMatches = m
			}
		}
	}
	if baseMatches != obsMatches {
		return nil, fmt.Errorf("bench: observation changed the answer: %d vs %d", baseMatches, obsMatches)
	}
	stmts := obsDB.Eng.Statements()
	if len(stmts) == 0 {
		return nil, fmt.Errorf("bench: observed engine recorded no statement aggregates")
	}

	res := &ObserveOverheadResult{
		BaselineSec: minBase.Seconds() / float64(len(queries)),
		ObservedSec: minObs.Seconds() / float64(len(queries)),
		Matches:     obsMatches,
		Statements:  len(stmts),
	}
	if res.BaselineSec > 0 {
		res.OverheadPct = (res.ObservedSec - res.BaselineSec) / res.BaselineSec * 100
	}
	return res, nil
}
