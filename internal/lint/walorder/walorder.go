// Package walorder enforces the log-before-write discipline of the
// physical after-image WAL (see DESIGN.md). Page images must reach the
// disk only through the pool's writeback path, which the WAL batch
// protocol dominates, so the check has two parts:
//
//  1. WritePage confinement — inside internal/storage and mural, a call to
//     a WritePage method is legal only in the pool's writeback function, in
//     methods of Disk implementations (types that themselves provide
//     WritePage, i.e. wrappers forwarding to an inner disk), or under a
//     //lint:wal-exempt annotation. Anything else is a page mutation that
//     bypasses the log.
//
//  2. Batch balance — a successful BeginBatch/beginBatch must on every path
//     be followed by CommitBatch/commitBatch/commitDDL/commitGrouped or
//     AbortBatch/rollbackBatch before the function exits; an open batch
//     left behind stalls group commit and breaks recovery atomicity.
//     commitGrouped counts as a release because it seals the batch and,
//     on a failed group sync, aborts and rolls it back itself.
package walorder

import (
	"go/ast"
	"strings"

	"github.com/mural-db/mural/internal/lint/analysis"
	"github.com/mural-db/mural/internal/lint/lifetime"
	"github.com/mural-db/mural/internal/lint/lintutil"
	"github.com/mural-db/mural/internal/lint/summary"
)

var Analyzer = &analysis.Analyzer{
	Name: "walorder",
	Doc:  "page writes must flow through the WAL-dominated writeback path, and WAL batches must be committed or aborted on every path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.ImportPath) {
		return nil
	}
	ann := lintutil.CollectAnnotations(pass)
	table := summary.ForPkg(pass.Fset, pass.Pkg, pass.TypesInfo, pass.Files)
	checkWritePageConfinement(pass, ann)
	lifetime.Check(pass, ann, lifetime.Spec{
		Noun: "WAL batch",
		IsAcquire: func(pass *analysis.Pass, call *ast.CallExpr) bool {
			name := lintutil.CalleeName(call)
			return name == "BeginBatch" || name == "beginBatch"
		},
		ReleaseFuncs: []string{
			"CommitBatch", "commitBatch", "commitDDL", "commitGrouped",
			"AbortBatch", "rollbackBatch",
		},
		// Summary-driven: a helper that transitively commits or aborts the
		// batch balances it too, whatever its name.
		IsReleaseCall: func(pass *analysis.Pass, call *ast.CallExpr) bool {
			fn := lintutil.StaticCallee(pass.TypesInfo, call)
			return fn != nil && table.CommitsBatch(fn)
		},
		Valueless:  true,
		Annotation: "wal-exempt",
	})
	return nil
}

// inScope limits the check to the storage kernel and the engine facade.
// Bare (slash-free) paths are standalone analysistest packages.
func inScope(importPath string) bool {
	return strings.Contains(importPath, "internal/storage") ||
		strings.HasSuffix(importPath, "/mural") ||
		!strings.Contains(importPath, "/")
}

func checkWritePageConfinement(pass *analysis.Pass, ann *lintutil.Annotations) {
	for _, fd := range lintutil.FuncDecls(pass) {
		if fd.Name.Name == "writeback" || receiverImplementsWritePage(pass, fd) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || lintutil.CalleeName(call) != "WritePage" {
				return true
			}
			if _, isMethod := call.Fun.(*ast.SelectorExpr); !isMethod {
				return true
			}
			if ann.Has(call.Pos(), "wal-exempt") {
				return true
			}
			pass.Reportf(call.Pos(),
				"WritePage outside the WAL-dominated writeback path: page images must be logged before they reach disk (annotate //lint:wal-exempt if this IS the logging path)")
			return true
		})
	}
}

// receiverImplementsWritePage reports whether fd is a method on a type that
// itself provides WritePage — a Disk implementation or wrapper, whose
// methods legitimately forward page writes.
func receiverImplementsWritePage(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return false
	}
	return lintutil.HasMethod(tv.Type, "WritePage")
}
