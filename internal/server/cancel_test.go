package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/mural-db/mural/internal/client"
	"github.com/mural-db/mural/internal/leakcheck"
	"github.com/mural-db/mural/mural"
)

// loadBigNames fills a names table large enough that a Ψ self-join runs for
// hundreds of milliseconds — long enough to cancel mid-flight.
func loadBigNames(t testing.TB, conn *client.Conn, n int) {
	t.Helper()
	if _, err := conn.Exec(`CREATE TABLE names (id INT, name UNITEXT)`); err != nil {
		t.Fatal(err)
	}
	pool := []string{"akash", "akaash", "aakash", "vikram", "vikran", "priya"}
	var rows []string
	for i := 0; i < n; i++ {
		rows = append(rows, fmt.Sprintf("(%d, unitext('%s', english))", i, pool[i%len(pool)]))
		if len(rows) == 200 || i == n-1 {
			if _, err := conn.Exec(`INSERT INTO names VALUES ` + strings.Join(rows, ", ")); err != nil {
				t.Fatal(err)
			}
			rows = rows[:0]
		}
	}
}

const bigPsiJoin = `SELECT count(*) FROM names a, names b WHERE a.name LEXEQUAL b.name THRESHOLD 2`

// A wire-level MsgCancel aborts a running full-table Ψ join well under a
// second, surfaces the typed error to the blocked caller, and leaves no
// engine goroutine behind.
func TestWireCancelAbortsRunningQuery(t *testing.T) {
	leakcheck.Check(t)
	_, conn := startServer(t)
	loadBigNames(t, conn, 800)

	cancelsBefore := mCancels.Value()
	errCh := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := conn.Exec(bigPsiJoin)
		errCh <- err
	}()
	// Give the statement time to reach the executor before canceling.
	time.Sleep(30 * time.Millisecond)
	if err := conn.Cancel(); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	select {
	case err := <-errCh:
		elapsed := time.Since(start)
		if !errors.Is(err, client.ErrCanceled) {
			t.Fatalf("canceled statement = %v, want client.ErrCanceled", err)
		}
		if elapsed > time.Second {
			t.Errorf("cancel observed after %s, want well under 1s", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("statement never returned after cancel")
	}
	if got := mCancels.Value(); got != cancelsBefore+1 {
		t.Errorf("mural_server_cancels_total advanced by %d, want 1", got-cancelsBefore)
	}
	// The connection is still usable for the next statement.
	cur, err := conn.Query(`SELECT count(*) FROM names`)
	if err != nil {
		t.Fatalf("statement after cancel: %v", err)
	}
	rows, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 800 {
		t.Errorf("count after cancel = %v", rows[0])
	}
}

// Canceling an idle connection is a harmless no-op.
func TestCancelIdleConnection(t *testing.T) {
	_, conn := startServer(t)
	if err := conn.Cancel(); err != nil {
		t.Fatalf("Cancel on idle conn: %v", err)
	}
	if err := conn.Ping(); err != nil {
		t.Fatalf("Ping after idle cancel: %v", err)
	}
}

// Shutdown lets a session with an open cursor finish its work, refuses new
// statements on active sessions with the typed shutdown error, and returns
// nil once everything drains.
func TestShutdownDrainsGracefully(t *testing.T) {
	leakcheck.Check(t)
	eng, err := mural.Open(mural.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Exec(`CREATE TABLE t (id INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(`INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}

	// An open cursor keeps the session active through the drain.
	cur, err := conn.Query(`SELECT id FROM t ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	for i := 0; i < 1000 && !srv.isDraining(); i++ {
		time.Sleep(time.Millisecond)
	}
	if !srv.isDraining() {
		t.Fatal("server never entered draining state")
	}

	// New statements on the still-active session are refused, typed.
	if _, err := conn.Exec(`INSERT INTO t VALUES (4)`); !errors.Is(err, client.ErrShutdown) {
		t.Fatalf("statement during drain = %v, want client.ErrShutdown", err)
	}
	// New connections are refused outright.
	if c2, err := client.Dial(addr); err == nil {
		if err := c2.Ping(); err == nil {
			t.Error("new connection served during drain")
		}
		_ = c2.Close()
	}

	// The in-flight cursor still fetches to completion.
	rows, err := cur.All()
	if err != nil {
		t.Fatalf("fetch during drain: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows during drain = %d, want 3", len(rows))
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("cursor close during drain: %v", err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown = %v, want nil after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned after last cursor closed")
	}
}

// A drain that cannot finish before its context expires cancels the
// stragglers and reports the context error.
func TestShutdownForcedOnContextExpiry(t *testing.T) {
	eng, err := mural.Open(mural.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Exec(`CREATE TABLE t (id INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	// A cursor the test never closes: the drain cannot complete.
	if _, err := conn.Query(`SELECT id FROM t`); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Shutdown = %v, want context.DeadlineExceeded", err)
	}
}
