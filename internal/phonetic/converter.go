package phonetic

import (
	"fmt"
	"strings"
	"sync"

	"github.com/mural-db/mural/internal/metrics"
	"github.com/mural-db/mural/internal/types"
)

// G2P observability: conversions vs cache hits separates "the converter
// ran" from "the materialized phoneme string (§3.1) was reused" — the
// ratio is the payoff of phoneme materialization at insert time.
var (
	mG2PConversions = metrics.Default.Counter("mural_g2p_conversions_total")
	mG2PCacheHits   = metrics.Default.Counter("mural_g2p_cache_hits_total")
	mG2PFallbacks   = metrics.Default.Counter("mural_g2p_fallbacks_total")
)

// Converter renders text of one language into a canonical IPA phoneme
// string. Converters must be deterministic and safe for concurrent use: the
// engine calls them at insert time (phoneme materialization, §3.1) and the
// outside-the-server client calls them per row.
type Converter interface {
	// Lang identifies the language this converter handles.
	Lang() types.LangID
	// ToPhoneme converts text to its IPA phoneme string.
	ToPhoneme(text string) string
}

// Registry maps language identifiers to converters. It plays the role of
// the Dhvani integration in the paper's PostgreSQL prototype (§4.2): the
// engine consults it whenever a UniText value needs its phonemic form.
type Registry struct {
	mu         sync.RWMutex
	converters map[types.LangID]Converter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{converters: make(map[types.LangID]Converter)}
}

// DefaultRegistry returns a registry pre-loaded with the built-in
// converters for English, Hindi, Tamil, Kannada and French.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.Register(NewEnglish())
	r.Register(NewHindi())
	r.Register(NewTamil())
	r.Register(NewKannada())
	r.Register(NewFrench())
	return r
}

// Register installs (or replaces) the converter for its language.
func (r *Registry) Register(c Converter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.converters[c.Lang()] = c
}

// Lookup returns the converter for lang.
func (r *Registry) Lookup(lang types.LangID) (Converter, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.converters[lang]
	return c, ok
}

// Langs returns the set of registered languages.
func (r *Registry) Langs() []types.LangID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]types.LangID, 0, len(r.converters))
	for l := range r.converters {
		out = append(out, l)
	}
	return out
}

// ToPhoneme converts a UniText to its phoneme string using the registered
// converter for its language. If the value already carries a materialized
// phoneme string, that is returned without reconversion. Unknown languages
// fall back to a lowercase copy of the text, so that Ψ degrades to
// case-insensitive approximate string matching rather than failing.
func (r *Registry) ToPhoneme(u types.UniText) string {
	if u.Phoneme != "" {
		mG2PCacheHits.Inc()
		return u.Phoneme
	}
	if c, ok := r.Lookup(u.Lang); ok {
		mG2PConversions.Inc()
		return c.ToPhoneme(u.Text)
	}
	mG2PFallbacks.Inc()
	return strings.ToLower(u.Text)
}

// Materialize returns a copy of u with its phoneme string filled in.
func (r *Registry) Materialize(u types.UniText) types.UniText {
	u.Phoneme = r.ToPhoneme(u)
	return u
}

// ruleSet is a longest-match-first rewriting engine shared by the rule-based
// converters. Rules map a grapheme sequence (at a given position class) to
// an IPA sequence. This mirrors how Dhvani-style engines are built: ordered
// context rules over the script's code points.
type ruleSet struct {
	// maxKey is the longest grapheme key length in runes.
	maxKey int
	// exact maps grapheme sequences to IPA strings.
	exact map[string]string
}

func newRuleSet(pairs map[string]string) *ruleSet {
	rs := &ruleSet{exact: pairs}
	for k := range pairs {
		if n := len([]rune(k)); n > rs.maxKey {
			rs.maxKey = n
		}
	}
	return rs
}

// apply rewrites text greedily, longest key first. Runes with no rule are
// dropped if drop is true, else copied through.
func (rs *ruleSet) apply(text string, drop bool) string {
	runes := []rune(text)
	var b strings.Builder
	for i := 0; i < len(runes); {
		matched := false
		max := rs.maxKey
		if rem := len(runes) - i; rem < max {
			max = rem
		}
		for l := max; l >= 1; l-- {
			key := string(runes[i : i+l])
			if out, ok := rs.exact[key]; ok {
				b.WriteString(out)
				i += l
				matched = true
				break
			}
		}
		if !matched {
			if !drop {
				b.WriteRune(runes[i])
			}
			i++
		}
	}
	return b.String()
}

// collapseRuns removes immediately repeated IPA runes (geminates), which
// keeps the metric robust to doubling differences across scripts
// ("Krishnan" vs "Krishnnan").
func collapseRuns(s string) string {
	var b strings.Builder
	var last rune = -1
	for _, r := range s {
		if r != last {
			b.WriteRune(r)
		}
		last = r
	}
	return b.String()
}

// errUnknownLang is returned by helpers that require a registered language.
var errUnknownLang = fmt.Errorf("phonetic: no converter registered for language")

// ConvertString is a convenience that converts text in the given language
// using the registry, returning an error for unregistered languages (used
// by the SQL layer to validate the IN <langs> clause eagerly).
func (r *Registry) ConvertString(text string, lang types.LangID) (string, error) {
	c, ok := r.Lookup(lang)
	if !ok {
		return "", fmt.Errorf("%w: %s", errUnknownLang, lang)
	}
	mG2PConversions.Inc()
	return c.ToPhoneme(text), nil
}
