package catalog

import (
	"testing"

	"github.com/mural-db/mural/internal/histogram"
	"github.com/mural-db/mural/internal/sql"
	"github.com/mural-db/mural/internal/types"
)

func bookTable() *Table {
	return &Table{
		Name: "book",
		Columns: []Column{
			{Name: "id", Kind: types.KindInt},
			{Name: "author", Kind: types.KindUniText},
			{Name: "title", Kind: types.KindText},
		},
		File: 7,
	}
}

func TestAddLookupTable(t *testing.T) {
	c := New()
	if err := c.AddTable(bookTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(bookTable()); err == nil {
		t.Error("duplicate table must fail")
	}
	tb, ok := c.TableByName("book")
	if !ok || tb.ColumnIndex("author") != 1 || tb.ColumnIndex("nope") != -1 {
		t.Errorf("lookup failed: %+v", tb)
	}
	if len(c.Tables()) != 1 {
		t.Error("Tables()")
	}
}

func TestDuplicateColumnRejected(t *testing.T) {
	c := New()
	err := c.AddTable(&Table{Name: "t", Columns: []Column{
		{Name: "x", Kind: types.KindInt}, {Name: "x", Kind: types.KindText},
	}})
	if err == nil {
		t.Error("duplicate column must fail")
	}
}

func TestIndexes(t *testing.T) {
	c := New()
	if err := c.AddTable(bookTable()); err != nil {
		t.Fatal(err)
	}
	ix := &Index{Name: "idx_author", Table: "book", Column: "author", Kind: sql.IndexMTree, File: 9}
	if err := c.AddIndex(ix); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(ix); err == nil {
		t.Error("duplicate index must fail")
	}
	if err := c.AddIndex(&Index{Name: "i2", Table: "ghost", Column: "x"}); err == nil {
		t.Error("index on missing table must fail")
	}
	if err := c.AddIndex(&Index{Name: "i3", Table: "book", Column: "ghost"}); err == nil {
		t.Error("index on missing column must fail")
	}
	got := c.IndexesOn("book", "author")
	if len(got) != 1 || got[0].Name != "idx_author" {
		t.Errorf("IndexesOn = %+v", got)
	}
	if len(c.IndexesOn("book", "title")) != 0 {
		t.Error("IndexesOn wrong column")
	}
	if _, ok := c.IndexByName("idx_author"); !ok {
		t.Error("IndexByName")
	}
	if len(c.Indexes()) != 1 {
		t.Error("Indexes()")
	}
}

func TestDropTableCascades(t *testing.T) {
	c := New()
	if err := c.AddTable(bookTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&Index{Name: "i1", Table: "book", Column: "author"}); err != nil {
		t.Fatal(err)
	}
	c.SetStats("book", &TableStats{Rows: 5})
	dropped, err := c.DropTable("book")
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || dropped[0].Name != "i1" {
		t.Errorf("dropped = %+v", dropped)
	}
	if _, ok := c.TableByName("book"); ok {
		t.Error("table still present")
	}
	if c.Stats("book") != nil {
		t.Error("stats still present")
	}
	if _, err := c.DropTable("book"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestSettings(t *testing.T) {
	c := New()
	if got := c.LexThreshold(); got != DefaultLexThreshold {
		t.Errorf("default threshold = %d", got)
	}
	c.SetSetting(LexThresholdKey, "5")
	if got := c.LexThreshold(); got != 5 {
		t.Errorf("threshold = %d", got)
	}
	c.SetSetting(LexThresholdKey, "garbage")
	if got := c.LexThreshold(); got != DefaultLexThreshold {
		t.Errorf("bad value must fall back: %d", got)
	}
	if _, ok := c.Setting("unset_thing"); ok {
		t.Error("unset setting must miss")
	}
}

func TestFileAllocation(t *testing.T) {
	c := New()
	a, b := c.AllocateFile(), c.AllocateFile()
	if a == b || a == 0 || b == 0 {
		t.Errorf("allocations: %d %d", a, b)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := New()
	if err := c.AddTable(bookTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&Index{Name: "i1", Table: "book", Column: "author", Kind: sql.IndexMDI, File: 11, Pivot: "vp"}); err != nil {
		t.Fatal(err)
	}
	c.SetStats("book", &TableStats{
		Rows:  123,
		Pages: 4,
		Columns: map[string]*ColumnStats{
			"author": {Hist: histogram.Build([]string{"a", "b", "a"}, 10), AvgWidth: 12},
		},
	})
	c.SetSetting(LexThresholdKey, "4")
	c.AllocateFile()
	next := c.AllocateFile() + 1

	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb, ok := c2.TableByName("book")
	if !ok || len(tb.Columns) != 3 || tb.File != 7 {
		t.Errorf("reloaded table: %+v", tb)
	}
	ix, ok := c2.IndexByName("i1")
	if !ok || ix.Kind != sql.IndexMDI || ix.Pivot != "vp" {
		t.Errorf("reloaded index: %+v", ix)
	}
	st := c2.Stats("book")
	if st == nil || st.Rows != 123 || st.Columns["author"].Hist.TotalRows != 3 {
		t.Errorf("reloaded stats: %+v", st)
	}
	if c2.LexThreshold() != 4 {
		t.Error("reloaded settings")
	}
	if got := c2.AllocateFile(); got < next {
		t.Errorf("file allocation regressed: %d < %d", got, next)
	}
}

func TestLoadMissingDirIsFresh(t *testing.T) {
	c, err := Load(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tables()) != 0 {
		t.Error("fresh catalog expected")
	}
}
