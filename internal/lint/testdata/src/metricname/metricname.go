// Golden package for the metricname analyzer. The local Registry mirrors
// the metrics package's get-or-create API.
package metricname

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }

const latencyMetric = "mural_query_latency_ns"

// ---- negative cases ----

func conforming(r *Registry) {
	r.Counter("mural_requests_total")
	r.Gauge("mural_pool_pinned_pages")
	r.Histogram(latencyMetric) // constants resolve at compile time
	r.Counter("mural_stats_recorded_total")
	r.Counter("mural_trace_spans_total")
	r.Histogram("mural_sort_spill_bytes")
}

// ---- positive cases ----

func violations(r *Registry) {
	r.Counter("mural_Bad_total")       // want `not snake_case`
	r.Counter("requests_total")        // want `outside the documented namespace`
	r.Counter("mural_requests")        // want `must end in _total`
	r.Gauge("mural__double")           // want `not snake_case`
	r.Histogram("mural_lat_")          // want `not snake_case`
	r.Gauge("mural_open_total")        // want `must not end in _total`
	r.Histogram("mural_io_total")      // want `must not end in _total`
	r.Histogram("mural_fetch_latency") // want `must carry its unit as a suffix`
	// mural_lint_* is reserved for nothing: the lint suite never exports
	// metrics, so the prefix is forbidden even in engine packages.
	r.Counter("mural_lint_findings_total") // want `uses the reserved prefix mural_lint_`
}

func duplicate(r *Registry) {
	r.Gauge("mural_pool_frames")
	r.Gauge("mural_pool_frames") // want `registered at multiple sites`
}

func nonConstant(r *Registry, name string) {
	r.Counter(name) // want `must be a compile-time constant`
}
