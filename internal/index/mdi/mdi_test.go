package mdi

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/mural-db/mural/internal/phonetic"
	"github.com/mural-db/mural/internal/storage"
)

func newIndex(t testing.TB) *Index {
	t.Helper()
	pool := storage.NewPool(256)
	pool.AttachDisk(1, storage.NewMemDisk())
	ix, err := Create(pool, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func rid(i int) storage.RID {
	return storage.RID{Page: storage.PageID(i/100 + 1), Slot: uint16(i % 100)}
}

func corpus(n int) []string {
	bases := []string{"nehru", "gandi", "aʃok", "kamala", "kriʃnan", "patel", "menon"}
	alphabet := []rune("aeiouknrstmpl")
	rng := rand.New(rand.NewSource(5))
	out := make([]string, 0, n)
	for len(out) < n {
		b := []rune(bases[rng.Intn(len(bases))])
		if rng.Intn(2) == 0 && len(b) > 1 {
			b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
		}
		out = append(out, string(b))
	}
	return out
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	ix := newIndex(t)
	data := corpus(1500)
	for i, s := range data {
		if err := ix.Insert(s, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{"nehru", "patel", "xyzzy"} {
		for k := 0; k <= 3; k++ {
			want := make(map[storage.RID]bool)
			for i, s := range data {
				if phonetic.WithinDistance(q, s, k) {
					want[rid(i)] = true
				}
			}
			rids, _, cands, err := ix.RangeSearch(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(rids) != len(want) {
				t.Errorf("q=%q k=%d: got %d, want %d", q, k, len(rids), len(want))
			}
			for _, r := range rids {
				if !want[r] {
					t.Errorf("q=%q k=%d: spurious rid %v", q, k, r)
				}
			}
			if cands < len(rids) {
				t.Errorf("candidates %d < matches %d", cands, len(rids))
			}
		}
	}
}

func TestCandidateSupersetIsLoose(t *testing.T) {
	// MDI's point (and the paper's point about outside-the-server indexing):
	// the candidate set is a superset that grows with the threshold.
	ix := newIndex(t)
	data := corpus(2000)
	for i, s := range data {
		if err := ix.Insert(s, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, _, c0, err := ix.RangeSearch("nehru", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, c3, err := ix.RangeSearch("nehru", 3)
	if err != nil {
		t.Fatal(err)
	}
	if c3 < c0 {
		t.Errorf("candidates must grow with threshold: k0=%d k3=%d", c0, c3)
	}
}

func TestDelete(t *testing.T) {
	ix := newIndex(t)
	if err := ix.Insert("nehru", rid(1)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete("nehru", rid(1)); err != nil {
		t.Fatal(err)
	}
	rids, _, _, err := ix.RangeSearch("nehru", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 0 {
		t.Errorf("deleted entry still found: %v", rids)
	}
}

func TestPivotPersistsViaCaller(t *testing.T) {
	pool := storage.NewPool(64)
	disk := storage.NewMemDisk()
	pool.AttachDisk(2, disk)
	ix, err := Create(pool, 2, "customvp")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Pivot() != "customvp" {
		t.Errorf("Pivot = %q", ix.Pivot())
	}
	if err := ix.Insert("nehru", rid(0)); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(pool, 2, "customvp")
	if err != nil {
		t.Fatal(err)
	}
	rids, _, _, err := ix2.RangeSearch("nehru", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 1 {
		t.Errorf("reopened search found %d", len(rids))
	}
	if ix2.Len() != 1 {
		t.Errorf("Len = %d", ix2.Len())
	}
}

func TestDefaultPivot(t *testing.T) {
	ix := newIndex(t)
	if ix.Pivot() != DefaultPivot {
		t.Errorf("empty pivot must default, got %q", ix.Pivot())
	}
}

func BenchmarkMDIRangeSearch(b *testing.B) {
	pool := storage.NewPool(512)
	pool.AttachDisk(1, storage.NewMemDisk())
	ix, err := Create(pool, 1, "")
	if err != nil {
		b.Fatal(err)
	}
	data := corpus(10000)
	for i, s := range data {
		if err := ix.Insert(s, rid(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ix.RangeSearch("nehru", 2); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleIndex_RangeSearch() {
	pool := storage.NewPool(64)
	pool.AttachDisk(1, storage.NewMemDisk())
	ix, _ := Create(pool, 1, "")
	_ = ix.Insert("nehru", storage.RID{Page: 1, Slot: 0})
	_ = ix.Insert("neru", storage.RID{Page: 1, Slot: 1})
	_ = ix.Insert("gandi", storage.RID{Page: 1, Slot: 2})
	rids, _, _, _ := ix.RangeSearch("nehru", 1)
	fmt.Println(len(rids))
	// Output: 2
}
