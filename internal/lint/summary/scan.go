package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// scanner walks one function body in source order, tracking the lock balance
// and collecting the function's direct facts.
type scanner struct {
	t    *Table
	pkg  *types.Package
	info *types.Info
	fi   *FuncInfo
	dirs directives

	// held maps lock key -> balance. Positive: held; negative: released on
	// the caller's behalf.
	held map[Key]int

	// params maps parameter objects to their index.
	params map[types.Object]int
}

func (t *Table) scanFunc(pkg *types.Package, info *types.Info, fd *ast.FuncDecl, obj *types.Func, dirs directives) *FuncInfo {
	fi := &FuncInfo{
		Fn:       obj,
		Name:     shortName(obj),
		Pos:      fd.Pos(),
		Acquired: map[Key]bool{},
	}
	fi.Exempt = dirs.has(t.fset, fd.Pos(), "lock-held-io")
	fi.HandoffOK = dirs.has(t.fset, fd.Pos(), "lock-handoff")

	sig := obj.Type().(*types.Signature)
	np := sig.Params().Len()
	fi.ParamReleased = make([]bool, np)
	fi.ParamEscapes = make([]bool, np)

	s := &scanner{t: t, pkg: pkg, info: info, fi: fi, dirs: dirs,
		held: map[Key]int{}, params: map[types.Object]int{}}
	for i := 0; i < np; i++ {
		s.params[sig.Params().At(i)] = i
	}

	s.stmts(fd.Body.List)
	s.scanAlwaysNil(fd, sig)
	return fi
}

// stmts walks a statement list, returning true when the list terminates the
// path (unconditional return / branch / terminal call).
func (s *scanner) stmts(list []ast.Stmt) bool {
	for _, st := range list {
		if s.stmt(st) {
			return true
		}
	}
	return false
}

// stmt walks one statement; true means the path terminates here.
func (s *scanner) stmt(st ast.Stmt) bool {
	switch t := st.(type) {
	case *ast.ReturnStmt:
		for _, r := range t.Results {
			s.expr(r, false)
		}
		return true

	case *ast.BranchStmt:
		// break/continue/goto all end the linear flow of this list.
		return true

	case *ast.BlockStmt:
		return s.stmts(t.List)

	case *ast.LabeledStmt:
		return s.stmt(t.Stmt)

	case *ast.IfStmt:
		if t.Init != nil {
			s.stmt(t.Init)
		}
		s.expr(t.Cond, false)
		saved := s.copyHeld()
		thenTerm := s.stmts(t.Body.List)
		thenHeld := s.held
		s.held = s.copyHeld2(saved)
		elseTerm := false
		if t.Else != nil {
			elseTerm = s.stmt(t.Else)
		}
		elseHeld := s.held
		// A branch that terminates keeps its lock effects to itself (the
		// `if err { mu.Unlock(); return err }` shape); a falling branch
		// carries its effects forward. When both fall, prefer the then
		// branch (balanced code agrees on both).
		switch {
		case thenTerm && elseTerm:
			s.held = saved
			return true
		case thenTerm:
			s.held = elseHeld
		case elseTerm:
			s.held = thenHeld
		default:
			s.held = thenHeld
		}
		return false

	case *ast.ForStmt:
		if t.Init != nil {
			s.stmt(t.Init)
		}
		if t.Cond != nil {
			s.expr(t.Cond, false)
		}
		saved := s.copyHeld()
		s.stmts(t.Body.List)
		if t.Post != nil {
			s.stmt(t.Post)
		}
		s.held = saved // loop bodies are assumed lock-balanced
		return false

	case *ast.RangeStmt:
		s.expr(t.X, false)
		saved := s.copyHeld()
		s.stmts(t.Body.List)
		s.held = saved
		return false

	case *ast.SwitchStmt:
		if t.Init != nil {
			s.stmt(t.Init)
		}
		if t.Tag != nil {
			s.expr(t.Tag, false)
		}
		s.clauses(t.Body, false)
		return false

	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			s.stmt(t.Init)
		}
		s.stmt(t.Assign)
		s.clauses(t.Body, false)
		return false

	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range t.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		// A select without default blocks until some comm is ready: its
		// channel operations are blocking ops.
		for _, cl := range t.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil {
				if !hasDefault {
					what := "channel receive"
					if _, isSend := cc.Comm.(*ast.SendStmt); isSend {
						what = "channel send"
					}
					s.block(cc.Comm.Pos(), what)
				}
				// Fold non-channel effects (calls in the comm expr).
				s.commEffects(cc.Comm)
			}
			saved := s.copyHeld()
			s.stmts(cc.Body)
			s.held = saved
		}
		return false

	case *ast.DeferStmt:
		// Deferred lock ops run at exit; they are not part of the linear
		// balance (a deferred Unlock keeps the lock held for the rest of the
		// body, which is exactly what callers of this scan need). Other
		// deferred effects (blocking calls, releases of params) are folded
		// at the defer site as an approximation.
		s.deferredCall(t.Call)
		return false

	case *ast.GoStmt:
		// The goroutine's body runs concurrently: skip its effects, but
		// record the static callee for call-graph reachability (govcheck
		// follows worker launches).
		if fn := staticCallee(s.info, t.Call); fn != nil {
			s.fi.Ops = append(s.fi.Ops, Op{Pos: t.Call.Pos(), Kind: OpCall, Callee: fn})
		}
		for _, a := range t.Call.Args {
			s.expr(a, false)
		}
		return false

	case *ast.ExprStmt:
		s.expr(t.X, false)
		return isTerminal(t.X)

	case *ast.SendStmt:
		s.expr(t.Chan, false)
		s.expr(t.Value, false)
		s.block(t.Pos(), "channel send")
		return false

	case *ast.AssignStmt:
		for _, r := range t.Rhs {
			s.expr(r, false)
		}
		s.assignEscapes(t)
		// `<-ch` on the RHS is a blocking receive.
		for _, r := range t.Rhs {
			if u, ok := r.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				s.block(u.Pos(), "channel receive")
			}
		}
		return false

	case *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		if gd, ok := st.(*ast.DeclStmt); ok {
			ast.Inspect(gd, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					s.expr(e, false)
					return false
				}
				return true
			})
		}
		return false

	default:
		return false
	}
}

// clauses walks switch clause bodies on copies of the lock state.
func (s *scanner) clauses(body *ast.BlockStmt, _ bool) {
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			s.expr(e, false)
		}
		saved := s.copyHeld()
		s.stmts(cc.Body)
		s.held = saved
	}
}

// commEffects folds the call effects of a select communication statement
// (its channel op was already recorded).
func (s *scanner) commEffects(comm ast.Stmt) {
	switch c := comm.(type) {
	case *ast.SendStmt:
		s.expr(c.Chan, true)
		s.expr(c.Value, true)
	case *ast.AssignStmt:
		for _, r := range c.Rhs {
			s.expr(r, true)
		}
	case *ast.ExprStmt:
		s.expr(c.X, true)
	}
}

// deferredCall folds a deferred call's effects: lock ops are skipped, other
// effects apply with the lock state at the defer site.
func (s *scanner) deferredCall(call *ast.CallExpr) {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if _, isLock := s.lockOp(inner); isLock {
					return false
				}
				s.callEffects(inner)
			}
			return true
		})
		return
	}
	if _, isLock := s.lockOp(call); isLock {
		return
	}
	s.callEffects(call)
	for _, a := range call.Args {
		s.expr(a, false)
	}
}

// expr walks one expression in evaluation order. insideComm suppresses
// re-recording channel ops already handled by the select scanner.
func (s *scanner) expr(e ast.Expr, insideComm bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.FuncLit:
			// Fold the literal's body at its definition point (it usually
			// runs here or shortly after); lock ops inside are still real.
			s.stmts(t.Body.List)
			return false
		case *ast.CallExpr:
			if key, isLock := s.lockOp(t); isLock {
				s.applyLock(t, key)
				return true
			}
			s.callEffects(t)
		case *ast.UnaryExpr:
			if t.Op == token.ARROW && !insideComm {
				s.block(t.Pos(), "channel receive")
			}
		case *ast.CompositeLit:
			s.compositeEscapes(t)
		}
		return true
	})
}

// callEffects records the non-lock effects of one call: blocking ops,
// static call sites, checkpoints, engine-specific verbs, parameter flows.
func (s *scanner) callEffects(call *ast.CallExpr) {
	name := calleeName(call)
	fn := staticCallee(s.info, call)

	if what, ok := s.blockingCall(call, name); ok {
		s.block(call.Pos(), what)
	} else if fn != nil {
		s.fi.Ops = append(s.fi.Ops, Op{
			Pos: call.Pos(), Kind: OpCall, Callee: fn,
			Held: s.heldKeys(), Released: s.releasedKeys(),
		})
		if held := s.heldKeys(); len(held) > 0 {
			s.t.pendingEdges = append(s.t.pendingEdges,
				pendingEdge{held: held, callee: fn, pos: call.Pos()})
		}
	}

	// Checkpoint verbs: evaluator.tick() or Resources.Err().
	if name == "tick" || (name == "Err" && receiverTypeName(s.info, call) == "Resources") {
		s.fi.Checkpoint = true
	}
	// Governed-memory release verbs.
	if (name == "release" || name == "Release") &&
		isOneOf(receiverTypeName(s.info, call), "evaluator", "Resources") {
		s.fi.ReleasesMem = true
	}
	// WAL batch commit/abort verbs (mirrors the walorder release set).
	switch name {
	case "CommitBatch", "AbortBatch", "commitBatch", "commitDDL", "commitGrouped", "rollbackBatch":
		s.fi.CommitsBatch = true
	}
	// Metric registration.
	switch name {
	case "Counter", "Gauge", "Histogram":
		if receiverTypeName(s.info, call) == "Registry" {
			s.fi.RegistersMetric = true
		}
	}

	// Parameter release: verb methods invoked directly on a parameter.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pi, ok := s.paramIdx(sel.X); ok {
			switch name {
			case "Close", "Unpin", "Release", "Abort", "Stop":
				s.fi.ParamReleased[pi] = true
			}
		}
	}

	// Parameter flows: a parameter passed as a direct argument.
	sigLen, variadic := calleeParamShape(fn)
	for i, arg := range call.Args {
		pi, ok := s.paramIdx(arg)
		if !ok {
			continue
		}
		if fn == nil || i >= sigLen || (variadic && i >= sigLen-1) {
			// Unknown callee or variadic bucket: assume ownership transfer.
			s.fi.ParamEscapes[pi] = true
			continue
		}
		s.fi.paramFlows = append(s.fi.paramFlows, paramFlow{From: pi, Callee: fn, Arg: i})
	}
}

// assignEscapes marks parameters stored by an assignment.
func (s *scanner) assignEscapes(t *ast.AssignStmt) {
	for i, r := range t.Rhs {
		pi, ok := s.paramIdx(r)
		if !ok {
			continue
		}
		if len(t.Lhs) == len(t.Rhs) {
			if id, isID := t.Lhs[i].(*ast.Ident); isID && id.Name == "_" {
				continue
			}
		}
		s.fi.ParamEscapes[pi] = true
	}
}

func (s *scanner) compositeEscapes(cl *ast.CompositeLit) {
	for _, el := range cl.Elts {
		e := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			e = kv.Value
		}
		if pi, ok := s.paramIdx(e); ok {
			s.fi.ParamEscapes[pi] = true
		}
	}
}

// paramIdx resolves e to a parameter index when e is (parenthesized) a
// direct reference to one of the function's parameters.
func (s *scanner) paramIdx(e ast.Expr) (int, bool) {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = u.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := s.info.ObjectOf(id)
	if obj == nil {
		return 0, false
	}
	pi, ok := s.params[obj]
	return pi, ok
}

// block records one blocking operation at pos with the current lock
// snapshot, unless the site carries //lint:lock-held-io (an audited site is
// neither reported locally nor propagated to callers).
func (s *scanner) block(pos token.Pos, what string) {
	if s.dirs.has(s.t.fset, pos, "lock-held-io") {
		return
	}
	s.fi.Ops = append(s.fi.Ops, Op{
		Pos: pos, Kind: OpBlock, What: what,
		Held: s.heldKeys(), Released: s.releasedKeys(),
	})
}

// blockingCall classifies a call as a blocking operation.
func (s *scanner) blockingCall(call *ast.CallExpr, name string) (string, bool) {
	switch name {
	case "Sync":
		// f.Sync() — fsync on files and file-like devices. Method calls only.
		if _, ok := call.Fun.(*ast.SelectorExpr); ok && len(call.Args) == 0 {
			return "fsync (Sync)", true
		}
	case "Wait":
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		// sync.Cond.Wait atomically unlocks its mutex: not a blocking op for
		// lock-scope purposes.
		if tv, ok := s.info.Types[sel.X]; ok && namedTypeName(tv.Type) == "Cond" && namedTypePkgPath(tv.Type) == "sync" {
			return "", false
		}
		return "Wait", true
	case "Sleep":
		if isPkgCall(s.info, call, "time") {
			return "time.Sleep", true
		}
	case "Read", "Write":
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		if tv, ok := s.info.Types[sel.X]; ok && namedTypePkgPath(tv.Type) == "net" {
			return "network I/O", true
		}
	}
	return "", false
}

// lockOp classifies a call as a sync.Mutex/RWMutex lock operation and
// returns the lock key.
func (s *scanner) lockOp(call *ast.CallExpr) (Key, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", false
	}
	selection, ok := s.info.Selections[sel]
	if !ok {
		return "", false
	}
	m, ok := selection.Obj().(*types.Func)
	if !ok || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", false
	}
	return s.lockKey(sel.X), true
}

// applyLock updates the lock balance for one lock call.
func (s *scanner) applyLock(call *ast.CallExpr, key Key) {
	sel := call.Fun.(*ast.SelectorExpr)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		// Record ordering edges: key acquired while others are held.
		if !isLocalKey(key) {
			for k, n := range s.held {
				if n > 0 && k != key && !isLocalKey(k) {
					s.t.edges = append(s.t.edges, OrderEdge{From: k, To: key, Pos: call.Pos()})
				}
			}
		}
		s.held[key]++
		s.fi.Acquired[key] = true
	case "Unlock", "RUnlock":
		s.held[key]--
		if s.held[key] < 0 {
			found := false
			for _, k := range s.fi.HandedOff {
				if k == key {
					found = true
				}
			}
			if !found {
				s.fi.HandedOff = append(s.fi.HandedOff, key)
				if s.fi.HandoffPos == token.NoPos {
					s.fi.HandoffPos = call.Pos()
				}
			}
		}
	}
}

// lockKey derives a type-granular key for the mutex expression.
func (s *scanner) lockKey(x ast.Expr) Key {
	for {
		if p, ok := x.(*ast.ParenExpr); ok {
			x = p.X
			continue
		}
		break
	}
	switch e := x.(type) {
	case *ast.SelectorExpr:
		// owner.field — key on the owner's named type.
		if tv, ok := s.info.Types[e.X]; ok {
			if tn := namedTypeName(tv.Type); tn != "" {
				return Key(namedTypePkgName(tv.Type) + "." + tn + "." + e.Sel.Name)
			}
		}
		// pkg.Var package-level mutex.
		if id, ok := e.X.(*ast.Ident); ok {
			if pn, ok := s.info.Uses[id].(*types.PkgName); ok {
				return Key(pn.Imported().Name() + "." + e.Sel.Name)
			}
		}
		return Key("expr." + e.Sel.Name)
	case *ast.Ident:
		obj := s.info.ObjectOf(e)
		if obj == nil {
			return Key("local:" + e.Name)
		}
		// A struct with an embedded mutex: key on the struct type.
		if tn := namedTypeName(obj.Type()); tn != "" && tn != "Mutex" && tn != "RWMutex" {
			return Key(namedTypePkgName(obj.Type()) + "." + tn)
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return Key(v.Pkg().Name() + "." + v.Name())
		}
		return Key("local:" + e.Name)
	default:
		return Key("local:?")
	}
}

func isLocalKey(k Key) bool {
	return len(k) >= 6 && k[:6] == "local:"
}

func (s *scanner) heldKeys() []Key {
	var out []Key
	for k, n := range s.held {
		if n > 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *scanner) releasedKeys() []Key {
	var out []Key
	for k, n := range s.held {
		if n < 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *scanner) copyHeld() map[Key]int {
	cp := make(map[Key]int, len(s.held))
	for k, v := range s.held {
		cp[k] = v
	}
	return cp
}

func (s *scanner) copyHeld2(m map[Key]int) map[Key]int {
	cp := make(map[Key]int, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// scanAlwaysNil decides whether every return's error slot is provably nil
// (directly, or via a callee resolved at Freeze).
func (s *scanner) scanAlwaysNil(fd *ast.FuncDecl, sig *types.Signature) {
	res := sig.Results()
	if res.Len() == 0 {
		return
	}
	last := res.At(res.Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return
	}
	candidate := true
	var deps []*types.Func
	var walk func(list []ast.Stmt)
	walk = func(list []ast.Stmt) {
		for _, st := range list {
			ast.Inspect(st, func(n ast.Node) bool {
				switch t := n.(type) {
				case *ast.FuncLit:
					return false // returns inside literals are not ours
				case *ast.ReturnStmt:
					if len(t.Results) == 0 {
						candidate = false // named results: give up
						return true
					}
					lastExpr := t.Results[len(t.Results)-1]
					if len(t.Results) == 1 && res.Len() > 1 {
						// return f() forwarding all results.
						if call, ok := lastExpr.(*ast.CallExpr); ok {
							if fn := staticCallee(s.info, call); fn != nil {
								deps = append(deps, fn)
								return true
							}
						}
						candidate = false
						return true
					}
					if id, ok := lastExpr.(*ast.Ident); ok && id.Name == "nil" {
						return true
					}
					if call, ok := lastExpr.(*ast.CallExpr); ok {
						if fn := staticCallee(s.info, call); fn != nil {
							deps = append(deps, fn)
							return true
						}
					}
					candidate = false
				}
				return true
			})
		}
	}
	walk(fd.Body.List)
	s.fi.nilCandidate = candidate
	s.fi.errDeps = deps
}

// --- small type/AST helpers (kept local; the summary package must not
// depend on the analysis driver) ---

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// staticCallee resolves a call to its concrete *types.Func, or nil for
// dynamic dispatch (interface methods, func values).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			return f
		}
		// Package-qualified call.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func receiverTypeName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return ""
	}
	return namedTypeName(selection.Recv())
}

func namedTypeName(t types.Type) string {
	if n := namedType(t); n != nil {
		return n.Obj().Name()
	}
	return ""
}

func namedTypePkgPath(t types.Type) string {
	if n := namedType(t); n != nil && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path()
	}
	return ""
}

func namedTypePkgName(t types.Type) string {
	if n := namedType(t); n != nil && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Name()
	}
	return "?"
}

func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if f, ok := info.Uses[sel.Sel].(*types.Func); ok && f.Pkg() != nil {
		return f.Pkg().Path() == pkgPath
	}
	return false
}

func isOneOf(s string, opts ...string) bool {
	for _, o := range opts {
		if s == o {
			return true
		}
	}
	return false
}

func isTerminal(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch calleeName(call) {
	case "panic", "Exit", "Goexit", "Fatal", "Fatalf", "Fatalln":
		return true
	}
	return false
}

// calleeParamShape reports the parameter count and variadic-ness of fn's
// signature (0, false for nil).
func calleeParamShape(fn *types.Func) (int, bool) {
	if fn == nil {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	return sig.Params().Len(), sig.Variadic()
}

// shortName renders "Recv.Method" or "pkg.Func" for diagnostics.
func shortName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if tn := namedTypeName(sig.Recv().Type()); tn != "" {
			return tn + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
