// Command muralsql is an interactive SQL shell for the MURAL engine.
//
// Usage:
//
//	muralsql [-dir /path/to/db] [-wordnet N] [-e "SQL"]
//
// With -dir the database persists; without, it is in-memory. -wordnet N
// generates and pins an N-synset taxonomy so SEMEQUAL works out of the box
// (0 disables). -e runs one statement and exits. The shell reads one
// statement per line; \q quits, \d lists tables, \timing toggles timings.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/mural-db/mural/mural"
)

func main() {
	var (
		dir     = flag.String("dir", "", "database directory (empty = in-memory)")
		wnSize  = flag.Int("wordnet", 20000, "generate an N-synset taxonomy for SEMEQUAL (0 = off)")
		oneShot = flag.String("e", "", "execute one statement and exit")
	)
	flag.Parse()

	cfg := mural.Config{Dir: *dir}
	if *wnSize > 0 {
		cfg.WordNet = mural.GenerateWordNet(mural.WordNetConfig{Synsets: *wnSize, Seed: 2006,
			Langs: []mural.LangID{mural.LangEnglish, mural.LangHindi, mural.LangTamil, mural.LangFrench}})
	}
	db, err := mural.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "muralsql:", err)
		os.Exit(1)
	}
	defer db.Close()

	if *oneShot != "" {
		if err := runStatement(db, *oneShot, true); err != nil {
			fmt.Fprintln(os.Stderr, "muralsql:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("muralsql — MURAL multilingual relational engine")
	fmt.Println(`type SQL statements; \d lists tables, \timing toggles timings, \q quits`)
	timing := false
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("mural> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == `\q`:
			return
		case line == `\timing`:
			timing = !timing
			fmt.Println("timing:", timing)
			continue
		case line == `\d`:
			listTables(db)
			continue
		}
		start := time.Now()
		if err := runStatement(db, line, true); err != nil {
			fmt.Println("error:", err)
			continue
		}
		if timing {
			fmt.Printf("(%s)\n", time.Since(start).Round(time.Microsecond))
		}
	}
}

func listTables(db *mural.Engine) {
	for _, t := range db.Catalog().Tables() {
		cols := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c.Name + " " + c.Kind.String()
		}
		fmt.Printf("  %s (%s)\n", t.Name, strings.Join(cols, ", "))
	}
	for _, ix := range db.Catalog().Indexes() {
		fmt.Printf("  index %s on %s(%s) using %s\n", ix.Name, ix.Table, ix.Column, ix.Kind)
	}
}

func runStatement(db *mural.Engine, stmt string, print bool) error {
	res, err := db.Exec(stmt)
	if err != nil {
		return err
	}
	if !print {
		return nil
	}
	if len(res.Cols) > 0 {
		fmt.Println(strings.Join(res.Cols, " | "))
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
	} else if res.RowsAffected > 0 {
		fmt.Printf("OK, %d rows\n", res.RowsAffected)
	} else {
		fmt.Println("OK")
	}
	return nil
}
