package storage

import "github.com/mural-db/mural/internal/metrics"

// Engine-wide storage metrics, published into the default registry. These
// mirror the per-pool / per-WAL Stats structs (which benchmark code reads
// directly) but aggregate across every open database in the process, which
// is what the /metrics endpoint wants. Updates are single atomic adds on
// paths that already hold the pool or WAL mutex.
var (
	mPoolHits      = metrics.Default.Counter("mural_bufferpool_hits_total")
	mPoolMisses    = metrics.Default.Counter("mural_bufferpool_misses_total")
	mPoolReads     = metrics.Default.Counter("mural_bufferpool_disk_reads_total")
	mPoolWrites    = metrics.Default.Counter("mural_bufferpool_disk_writes_total")
	mPoolEvictions = metrics.Default.Counter("mural_bufferpool_evictions_total")
	mPoolFlushes   = metrics.Default.Counter("mural_bufferpool_flushes_total")

	mWALCommits     = metrics.Default.Counter("mural_wal_commits_total")
	mWALPageImages  = metrics.Default.Counter("mural_wal_page_images_total")
	mWALSyncs       = metrics.Default.Counter("mural_wal_fsyncs_total")
	mWALBytes       = metrics.Default.Counter("mural_wal_bytes_total")
	mWALCheckpoints = metrics.Default.Counter("mural_wal_checkpoints_total")
)
