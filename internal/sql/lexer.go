package sql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokSymbol // ( ) , ; * . = < > <= >= <>
)

type token struct {
	kind tokenKind
	text string // keywords are uppercased; idents lowercased
	pos  int
}

// keywords recognized by the dialect.
var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "DROP": true, "INDEX": true, "ON": true,
	"USING": true, "INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "DISTINCT": true, "FROM": true, "JOIN": true,
	"WHERE": true, "GROUP": true, "BY": true, "ORDER": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "AS": true, "ASC": true,
	"DESC": true, "SET": true, "SHOW": true, "ANALYZE": true,
	"EXPLAIN": true, "DELETE": true, "LIKE": true, "LEXEQUAL": true, "SEMEQUAL": true, "THRESHOLD": true,
	"IN": true, "NULL": true, "TRUE": true, "FALSE": true, "INNER": true,
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes the whole input up front; the parser then walks the slice.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, tok)
		if tok.kind == tokEOF {
			return l.tokens, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]

	switch {
	case c == '\'':
		// String literal with '' escaping.
		var b strings.Builder
		l.pos++
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("sql: unterminated string at offset %d", start)
			}
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			r, sz := utf8.DecodeRuneInString(l.src[l.pos:])
			b.WriteRune(r)
			l.pos += sz
		}

	case c >= '0' && c <= '9' || (c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
		l.pos++
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			if (d >= '0' && d <= '9') || d == '.' || d == 'e' || d == 'E' ||
				((d == '+' || d == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
				l.pos++
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil

	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokSymbol, text: l.src[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokSymbol, text: l.src[start:l.pos], pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokSymbol, text: "<>", pos: start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected '!' at offset %d", start)
	case strings.ContainsRune("(),;*.=", rune(c)):
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	}

	// Identifier or keyword: letters (any script), digits, underscore.
	r, sz := utf8.DecodeRuneInString(l.src[l.pos:])
	if unicode.IsLetter(r) || r == '_' {
		l.pos += sz
		for l.pos < len(l.src) {
			r, sz = utf8.DecodeRuneInString(l.src[l.pos:])
			if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
				l.pos += sz
				continue
			}
			break
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: strings.ToLower(word), pos: start}, nil
	}
	return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}
