package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func walPage(file FileID, page PageID, fill byte) WALPageRec {
	img := make([]byte, PageSize)
	for i := range img {
		img[i] = fill
	}
	return WALPageRec{File: file, Page: page, Image: img}
}

func TestWALRoundTrip(t *testing.T) {
	log := NewMemLog()
	w := NewWAL(log)
	if err := w.AppendBatch([]WALPageRec{walPage(1, 0, 0xAA), walPage(1, 1, 0xBB)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch([]WALPageRec{walPage(2, 5, 0xCC)}, []byte(`{"catalog":true}`)); err != nil {
		t.Fatal(err)
	}
	scan, err := ScanWAL(log)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Torn {
		t.Error("clean log reported torn")
	}
	if len(scan.Batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(scan.Batches))
	}
	b0, b1 := scan.Batches[0], scan.Batches[1]
	if len(b0.Pages) != 2 || b0.Catalog != nil || b0.Seq != 1 {
		t.Errorf("batch 0 malformed: %d pages, cat=%v, seq=%d", len(b0.Pages), b0.Catalog, b0.Seq)
	}
	if len(b1.Pages) != 1 || string(b1.Catalog) != `{"catalog":true}` || b1.Seq != 2 {
		t.Errorf("batch 1 malformed: %d pages, cat=%q, seq=%d", len(b1.Pages), b1.Catalog, b1.Seq)
	}
	if b0.Pages[0].Image[17] != 0xAA || b1.Pages[0].Image[17] != 0xCC {
		t.Error("page images corrupted in round trip")
	}
	if b1.Pages[0].File != 2 || b1.Pages[0].Page != 5 {
		t.Errorf("page address corrupted: file %d page %d", b1.Pages[0].File, b1.Pages[0].Page)
	}
	if scan.ValidBytes != log.Len() {
		t.Errorf("ValidBytes %d != log length %d", scan.ValidBytes, log.Len())
	}
}

func TestWALEmptyAndTruncated(t *testing.T) {
	log := NewMemLog()
	scan, err := ScanWAL(log)
	if err != nil || len(scan.Batches) != 0 || scan.Torn {
		t.Fatalf("empty log: %v %+v", err, scan)
	}
	w := NewWAL(log)
	if err := w.AppendBatch([]WALPageRec{walPage(1, 0, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if log.Len() != 0 {
		t.Errorf("truncate left %d bytes", log.Len())
	}
	scan, err = ScanWAL(log)
	if err != nil || len(scan.Batches) != 0 {
		t.Fatalf("truncated log: %v %+v", err, scan)
	}
}

// TestWALTornTail crashes the log at every byte prefix and verifies the
// scan yields exactly the batches whose commit record fully survived —
// never an error, never a partial batch.
func TestWALTornTail(t *testing.T) {
	full := NewMemLog()
	w := NewWAL(full)
	commitEnds := []int64{}
	for i := 0; i < 4; i++ {
		var cat []byte
		if i == 2 {
			cat = []byte("catalog image")
		}
		if err := w.AppendBatch([]WALPageRec{walPage(1, PageID(i), byte(i+1))}, cat); err != nil {
			t.Fatal(err)
		}
		commitEnds = append(commitEnds, full.Len())
	}
	for cut := int64(0); cut <= full.Len(); cut++ {
		torn := NewMemLog()
		torn.buf = append([]byte(nil), full.buf[:cut]...)
		scan, err := ScanWAL(torn)
		if err != nil {
			t.Fatalf("cut %d: scan error %v", cut, err)
		}
		wantBatches := 0
		for _, end := range commitEnds {
			if cut >= end {
				wantBatches++
			}
		}
		if len(scan.Batches) != wantBatches {
			t.Fatalf("cut %d: got %d batches, want %d", cut, len(scan.Batches), wantBatches)
		}
		for i, b := range scan.Batches {
			if len(b.Pages) != 1 || b.Pages[0].Image[0] != byte(i+1) {
				t.Fatalf("cut %d: batch %d corrupted", cut, i)
			}
		}
	}
}

// TestWALBitFlip corrupts a single byte of the final record and verifies
// recovery stops at the last intact commit.
func TestWALBitFlip(t *testing.T) {
	log := NewMemLog()
	w := NewWAL(log)
	for i := 0; i < 3; i++ {
		if err := w.AppendBatch([]WALPageRec{walPage(1, PageID(i), byte(i+1))}, nil); err != nil {
			t.Fatal(err)
		}
	}
	secondCommit := int64(0)
	{
		scan, _ := ScanWAL(log)
		if len(scan.Batches) != 3 {
			t.Fatalf("setup: %d batches", len(scan.Batches))
		}
		// Find where batch 2 ends by scanning a prefix-truncated copy.
		for cut := log.Len(); cut > 0; cut-- {
			c := NewMemLog()
			c.buf = append([]byte(nil), log.buf[:cut]...)
			s, _ := ScanWAL(c)
			if len(s.Batches) == 2 {
				secondCommit = s.ValidBytes
				break
			}
		}
	}
	// Flip one bit inside the last batch's page image.
	log.buf[secondCommit+walFrameHeader+100] ^= 0x40
	scan, err := ScanWAL(log)
	if err != nil {
		t.Fatal(err)
	}
	if !scan.Torn {
		t.Error("bit flip not detected as torn")
	}
	if len(scan.Batches) != 2 {
		t.Fatalf("got %d batches after bit flip, want 2", len(scan.Batches))
	}
	if scan.ValidBytes != secondCommit {
		t.Errorf("ValidBytes %d, want %d", scan.ValidBytes, secondCommit)
	}
}

func TestWALGarbageLengthField(t *testing.T) {
	log := NewMemLog()
	w := NewWAL(log)
	if err := w.AppendBatch([]WALPageRec{walPage(1, 0, 7)}, nil); err != nil {
		t.Fatal(err)
	}
	// Append a frame header claiming an absurd payload size.
	head := []byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4}
	if _, err := log.WriteAt(head, log.Len()); err != nil {
		t.Fatal(err)
	}
	scan, err := ScanWAL(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Batches) != 1 || !scan.Torn {
		t.Errorf("garbage length: %d batches torn=%v", len(scan.Batches), scan.Torn)
	}
}

// TestWALReadLatestImage exercises the abort path's committed-image lookup.
func TestWALReadLatestImage(t *testing.T) {
	log := NewMemLog()
	w := NewWAL(log)
	key := PageKey{File: 3, Page: 9}
	buf := make([]byte, PageSize)
	if ok, err := w.ReadLatestImage(key, buf); err != nil || ok {
		t.Fatalf("image before any commit: ok=%v err=%v", ok, err)
	}
	if err := w.AppendBatch([]WALPageRec{walPage(3, 9, 0x11)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch([]WALPageRec{walPage(3, 9, 0x22)}, nil); err != nil {
		t.Fatal(err)
	}
	ok, err := w.ReadLatestImage(key, buf)
	if err != nil || !ok {
		t.Fatalf("latest image: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(buf, walPage(3, 9, 0x22).Image) {
		t.Error("latest image is not the most recent commit")
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := w.ReadLatestImage(key, buf); ok {
		t.Error("image survived truncate")
	}
}

// TestWALConcurrentAppendAndCheckpoint drives concurrent batch appends and
// truncations; under -race this validates the locking of the WAL itself,
// and the final scan validates that frames never interleave.
func TestWALConcurrentAppendAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewWAL(f)
	const writers = 4
	const batchesPerWriter = 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < batchesPerWriter; i++ {
				pages := []WALPageRec{walPage(FileID(g+1), PageID(i), byte(g+1))}
				if err := w.AppendBatch(pages, nil); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := w.Truncate(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	scan, err := ScanWAL(f)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Torn {
		t.Error("concurrent appends produced a torn log")
	}
	for _, b := range scan.Batches {
		if len(b.Pages) != 1 {
			t.Fatalf("interleaved batch: %d pages", len(b.Pages))
		}
		if b.Pages[0].Image[0] != byte(b.Pages[0].File) {
			t.Fatal("batch pages from different writers interleaved")
		}
	}
}

// TestPoolBatchNoSteal verifies the WAL rule: pages dirtied by an open
// batch never reach the data file, even under eviction pressure.
func TestPoolBatchNoSteal(t *testing.T) {
	disk := NewMemDisk()
	pool := NewPool(4)
	pool.AttachDisk(1, disk)
	pool.SetWAL(NewWAL(NewMemLog()))
	if err := pool.BeginBatch(); err != nil {
		t.Fatal(err)
	}
	// Dirty two pages inside the batch.
	var keys []PageKey
	for i := 0; i < 2; i++ {
		h, err := pool.NewPage(1)
		if err != nil {
			t.Fatal(err)
		}
		h.Data()[0] = byte(i + 1)
		h.MarkDirty()
		keys = append(keys, h.Key())
		h.Unpin()
	}
	// Evict everything evictable; batch pages must survive in memory and
	// stay off the disk.
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i, k := range keys {
		if err := disk.ReadPage(k.Page, buf); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatalf("uncommitted page %d leaked to disk", i)
			}
		}
	}
	if err := pool.CommitBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := disk.ReadPage(keys[0].Page, buf); err != nil {
		t.Fatal(err)
	}
	if buf[pageChecksumSize] != 1 {
		t.Error("committed page did not reach disk after flush")
	}
}

// TestPoolAbortBatchRestoresCommittedImages checks that aborting a batch
// rolls pages back to their last committed content, including content that
// had never been written back to the data file.
func TestPoolAbortBatchRestoresCommittedImages(t *testing.T) {
	disk := NewMemDisk()
	pool := NewPool(8)
	pool.AttachDisk(1, disk)
	pool.SetWAL(NewWAL(NewMemLog()))

	// Batch 1: commit a page with known content (not flushed to disk).
	if err := pool.BeginBatch(); err != nil {
		t.Fatal(err)
	}
	h, err := pool.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	key := h.Key()
	copy(h.Data(), "committed")
	h.MarkDirty()
	h.Unpin()
	if err := pool.CommitBatch(nil); err != nil {
		t.Fatal(err)
	}

	// Batch 2: scribble over it, then abort.
	if err := pool.BeginBatch(); err != nil {
		t.Fatal(err)
	}
	h, err = pool.Pin(key)
	if err != nil {
		t.Fatal(err)
	}
	copy(h.Data(), "uncommitted")
	h.MarkDirty()
	h.Unpin()
	if err := pool.AbortBatch(); err != nil {
		t.Fatal(err)
	}

	h, err = pool.Pin(key)
	if err != nil {
		t.Fatal(err)
	}
	got := string(h.Data()[:9])
	h.Unpin()
	if got != "committed" {
		t.Errorf("aborted page reads %q, want committed content", got)
	}
}

// TestPoolAbortBatchDropsFreshPages checks that pages with no committed
// image are dropped so the next read sees the data file's content.
func TestPoolAbortBatchDropsFreshPages(t *testing.T) {
	disk := NewMemDisk()
	pool := NewPool(4)
	pool.AttachDisk(1, disk)
	pool.SetWAL(NewWAL(NewMemLog()))
	if err := pool.BeginBatch(); err != nil {
		t.Fatal(err)
	}
	h, err := pool.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	key := h.Key()
	copy(h.Data(), "phantom")
	h.MarkDirty()
	h.Unpin()
	if err := pool.AbortBatch(); err != nil {
		t.Fatal(err)
	}
	h, err = pool.Pin(key)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unpin()
	for _, b := range h.Data()[:7] {
		if b != 0 {
			t.Fatal("aborted fresh page kept uncommitted content")
		}
	}
}

func TestFileDiskShortReadZeroFills(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "short.db")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, PageSize)
	for i := range page {
		page[i] = 0xEE
	}
	if err := d.WritePage(id, page); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	// Lose the file's tail (as a crashed filesystem might), then read with
	// a poisoned buffer: the missing range must come back zeroed, not as
	// stale caller bytes.
	if err := os.Truncate(path, PageSize/2); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = 0x55
	}
	if err := d.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < PageSize/2; i++ {
		if buf[i] != 0xEE {
			t.Fatalf("byte %d: surviving prefix corrupted", i)
		}
	}
	for i := PageSize / 2; i < PageSize; i++ {
		if buf[i] != 0 {
			t.Fatalf("byte %d = %#x: stale bytes leaked through short read", i, buf[i])
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
