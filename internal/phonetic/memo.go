package phonetic

import (
	"github.com/mural-db/mural/internal/metrics"
	"github.com/mural-db/mural/internal/types"
)

// mG2PCacheMisses counts memo-cache lookups that had to run a conversion.
// Together with mural_g2p_cache_hits_total it measures how much repeated
// G2P work a Ψ join avoids (inner tuples are converted once per distinct
// string, not once per probe).
var mG2PCacheMisses = metrics.Default.Counter("mural_g2p_cache_misses_total")

// MemoCache memoizes grapheme-to-phoneme conversions for the duration of
// one query (one executor worker, in a parallel plan). Values that already
// carry a materialized phoneme string are returned directly, exactly as
// Registry.ToPhoneme does; everything else is converted at most once per
// distinct (text, lang) pair.
//
// A MemoCache is NOT safe for concurrent use: the executor gives each
// worker its own instance, which keeps the hot path free of locks.
type MemoCache struct {
	reg *Registry
	m   map[memoKey]string
}

type memoKey struct {
	text string
	lang types.LangID
}

// NewMemoCache returns an empty per-query cache backed by reg.
func NewMemoCache(reg *Registry) *MemoCache {
	return &MemoCache{reg: reg}
}

// ToPhoneme returns the phoneme string for u, converting through the
// registry on the first sighting of each distinct (text, lang) pair and
// serving repeats from the memo.
func (c *MemoCache) ToPhoneme(u types.UniText) string {
	if u.Phoneme != "" {
		mG2PCacheHits.Inc()
		return u.Phoneme
	}
	key := memoKey{text: u.Text, lang: u.Lang}
	if p, ok := c.m[key]; ok {
		mG2PCacheHits.Inc()
		return p
	}
	mG2PCacheMisses.Inc()
	p := c.reg.ToPhoneme(u)
	if c.m == nil {
		c.m = make(map[memoKey]string)
	}
	c.m[key] = p
	return p
}

// Len reports the number of memoized conversions (distinct unmaterialized
// inputs seen so far).
func (c *MemoCache) Len() int { return len(c.m) }
