package exec

import (
	"fmt"

	"github.com/mural-db/mural/internal/phonetic"
	"github.com/mural-db/mural/internal/plan"
	"github.com/mural-db/mural/internal/sql"
	"github.com/mural-db/mural/internal/types"
)

// evaluator evaluates compiled expressions against tuples, with access to
// the runtime Env for the multilingual operators.
type evaluator struct {
	env   Env
	stats *RunStats
	// collector, when non-nil, makes build wrap every operator with a
	// timing iterator (EXPLAIN ANALYZE).
	collector *ExecStats
	// par, when non-nil, marks this evaluator as one Gather worker's: scans
	// of Parallel plan nodes claim morsels instead of the whole table.
	par *parallelCtx
	// memo is the per-query (per-worker) G2P memoization cache, created on
	// the first Ψ conversion so plain queries never pay for it.
	memo *phonetic.MemoCache
	// res, when non-nil, is the query's shared governance state (cancel
	// context + memory accountant); ticks is this evaluator's private
	// amortization counter for the cancellation checkpoint.
	res   *Resources
	ticks uint32
	// vec enables batch-at-a-time execution for eligible subtrees; fuse
	// additionally compiles Ψ/Ω-filter-over-scan pipelines into single
	// page-at-a-time loops. pool is the query's shared batch pool (set
	// whenever vec is; Gather workers share the parent's).
	vec  bool
	fuse bool
	pool *BatchPool
}

// phoneme converts through the per-query memo cache: in a Ψ join, the inner
// side's unmaterialized values convert once per distinct string rather than
// once per probe. Each worker owns its evaluator, so the cache is unshared.
func (ev *evaluator) phoneme(u types.UniText) string {
	if ev.memo == nil {
		ev.memo = phonetic.NewMemoCache(ev.env.Phonetic())
		if sp, ok := ev.env.(SharedG2PProvider); ok {
			if shared := sp.SharedG2P(); shared != nil {
				ev.memo.SetShared(shared)
			}
		}
	}
	return ev.memo.ToPhoneme(u)
}

// eval evaluates e over t.
func (ev *evaluator) eval(e plan.Expr, t types.Tuple) (types.Value, error) {
	switch x := e.(type) {
	case *plan.Const:
		return x.Val, nil
	case *plan.ColIdx:
		if x.Idx < 0 || x.Idx >= len(t) {
			return types.Value{}, fmt.Errorf("exec: column $%d out of range (tuple width %d)", x.Idx, len(t))
		}
		return t[x.Idx], nil
	case *plan.Cmp:
		l, err := ev.eval(x.L, t)
		if err != nil {
			return types.Value{}, err
		}
		r, err := ev.eval(x.R, t)
		if err != nil {
			return types.Value{}, err
		}
		// SQL-ish semantics: NULL never compares true.
		if l.IsNull() || r.IsNull() {
			return types.NewBool(false), nil
		}
		if !types.Comparable(l.Kind(), r.Kind()) {
			return types.Value{}, fmt.Errorf("exec: cannot compare %s with %s", l.Kind(), r.Kind())
		}
		var ok bool
		if x.Op == sql.OpEq {
			ok = types.Equal(l, r)
		} else if x.Op == sql.OpNe {
			ok = !types.Equal(l, r)
		} else {
			c := types.Compare(l, r)
			switch x.Op {
			case sql.OpLt:
				ok = c < 0
			case sql.OpLe:
				ok = c <= 0
			case sql.OpGt:
				ok = c > 0
			case sql.OpGe:
				ok = c >= 0
			}
		}
		return types.NewBool(ok), nil
	case *plan.AndOr:
		l, err := ev.evalBool(x.L, t)
		if err != nil {
			return types.Value{}, err
		}
		if x.Or {
			if l {
				return types.NewBool(true), nil
			}
		} else if !l {
			return types.NewBool(false), nil
		}
		r, err := ev.evalBool(x.R, t)
		if err != nil {
			return types.Value{}, err
		}
		return types.NewBool(r), nil
	case *plan.Neg:
		v, err := ev.evalBool(x.Inner, t)
		if err != nil {
			return types.Value{}, err
		}
		return types.NewBool(!v), nil
	case *plan.Like:
		l, err := ev.eval(x.L, t)
		if err != nil {
			return types.Value{}, err
		}
		p, err := ev.eval(x.Pattern, t)
		if err != nil {
			return types.Value{}, err
		}
		if l.IsNull() || p.IsNull() {
			return types.NewBool(false), nil
		}
		return types.NewBool(likeMatch(l.Text(), p.Text())), nil
	case *plan.Psi:
		return ev.evalPsi(x, t)
	case *plan.Omega:
		return ev.evalOmega(x, t)
	case *plan.Call:
		return ev.evalCall(x, t)
	default:
		return types.Value{}, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

func (ev *evaluator) evalBool(e plan.Expr, t types.Tuple) (bool, error) {
	v, err := ev.eval(e, t)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if v.Kind() != types.KindBool {
		return false, fmt.Errorf("exec: predicate evaluated to %s, not BOOL", v.Kind())
	}
	return v.Bool(), nil
}

// likeMatch implements SQL LIKE: '%' matches any rune run, '_' one rune.
func likeMatch(s, pattern string) bool {
	sr, pr := []rune(s), []rune(pattern)
	var match func(si, pi int) bool
	match = func(si, pi int) bool {
		for pi < len(pr) {
			switch pr[pi] {
			case '%':
				// Collapse consecutive %'s, then try every suffix.
				for pi < len(pr) && pr[pi] == '%' {
					pi++
				}
				if pi == len(pr) {
					return true
				}
				for i := si; i <= len(sr); i++ {
					if match(i, pi) {
						return true
					}
				}
				return false
			case '_':
				if si >= len(sr) {
					return false
				}
				si++
				pi++
			default:
				if si >= len(sr) || sr[si] != pr[pi] {
					return false
				}
				si++
				pi++
			}
		}
		return si == len(sr)
	}
	return match(0, 0)
}

// psiOperand extracts the phoneme string and language of a Ψ operand value.
// UNITEXT values use their materialized phoneme (converting on demand);
// bare TEXT is read as the query's first listed language, defaulting to
// English — the paper's queries supply the input name "in one language".
func (ev *evaluator) psiOperand(v types.Value, langs []types.LangID) (string, types.LangID, bool) {
	switch v.Kind() {
	case types.KindUniText:
		u := v.UniText()
		return ev.phoneme(u), u.Lang, true
	case types.KindText:
		lang := types.LangEnglish
		if len(langs) > 0 {
			lang = langs[0]
		}
		return ev.phoneme(types.Compose(v.Text(), lang)), lang, true
	default:
		return "", types.LangUnknown, false
	}
}

// langAdmitted applies the IN-langs clause of Figure 2: when the query
// names output languages, a stored (column) value only matches if its
// language is listed.
func langAdmitted(lang types.LangID, langs []types.LangID) bool {
	if len(langs) == 0 {
		return true
	}
	for _, l := range langs {
		if l == lang {
			return true
		}
	}
	return false
}

func (ev *evaluator) evalPsi(x *plan.Psi, t types.Tuple) (types.Value, error) {
	// Ψ is the expensive per-row work of a LexEQUAL plan (G2P conversion +
	// edit distance), so the evaluation path carries its own checkpoint.
	if err := ev.tick(); err != nil {
		return types.Value{}, err
	}
	l, err := ev.eval(x.L, t)
	if err != nil {
		return types.Value{}, err
	}
	r, err := ev.eval(x.R, t)
	if err != nil {
		return types.Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return types.NewBool(false), nil
	}
	lph, llang, okL := ev.psiOperand(l, x.Langs)
	rph, rlang, okR := ev.psiOperand(r, x.Langs)
	if !okL || !okR {
		return types.Value{}, fmt.Errorf("exec: LEXEQUAL operands must be text, got %s and %s", l.Kind(), r.Kind())
	}
	// The IN clause restricts stored (UNITEXT column) values; both sides
	// are checked so the operator is symmetric, per the Mural algebra.
	if l.Kind() == types.KindUniText && !langAdmitted(llang, x.Langs) {
		return types.NewBool(false), nil
	}
	if r.Kind() == types.KindUniText && !langAdmitted(rlang, x.Langs) {
		return types.NewBool(false), nil
	}
	if ev.stats != nil {
		ev.stats.PsiEvaluations++
	}
	mPsiEvals.Inc()
	return types.NewBool(phonetic.WithinDistance(lph, rph, x.Threshold)), nil
}

// omegaOperand coerces a value to UniText for the Ω matcher.
func omegaOperand(v types.Value, langs []types.LangID) (types.UniText, bool) {
	switch v.Kind() {
	case types.KindUniText:
		return v.UniText(), true
	case types.KindText:
		lang := types.LangEnglish
		if len(langs) > 0 {
			lang = langs[0]
		}
		return types.Compose(v.Text(), lang), true
	default:
		return types.UniText{}, false
	}
}

func (ev *evaluator) evalOmega(x *plan.Omega, t types.Tuple) (types.Value, error) {
	m := ev.env.Semantic()
	if m == nil {
		return types.Value{}, fmt.Errorf("exec: SEMEQUAL requires a loaded taxonomy")
	}
	l, err := ev.eval(x.L, t)
	if err != nil {
		return types.Value{}, err
	}
	r, err := ev.eval(x.R, t)
	if err != nil {
		return types.Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return types.NewBool(false), nil
	}
	// Both operands keep their own language: the IN clause names *output*
	// languages (which rows may match), not the language of the query
	// concept — 'History' in Figure 4 is an English word even though the
	// results span English, French and Tamil.
	lu, okL := omegaOperand(l, nil)
	ru, okR := omegaOperand(r, nil)
	if !okL || !okR {
		return types.Value{}, fmt.Errorf("exec: SEMEQUAL operands must be text, got %s and %s", l.Kind(), r.Kind())
	}
	if ev.stats != nil {
		ev.stats.OmegaProbes++
	}
	mOmegaProbes.Inc()
	if ev.res != nil {
		// Governed probes check the cancel checkpoint and charge fresh
		// closure materializations against the query's memory budget.
		if err := ev.tick(); err != nil {
			return types.Value{}, err
		}
		ok, err := m.MatchMeter(lu, ru, x.Langs, ev.res)
		if err != nil {
			return types.Value{}, err
		}
		return types.NewBool(ok), nil
	}
	return types.NewBool(m.Match(lu, ru, x.Langs)), nil
}

func (ev *evaluator) evalCall(x *plan.Call, t types.Tuple) (types.Value, error) {
	args := make([]types.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ev.eval(a, t)
		if err != nil {
			return types.Value{}, err
		}
		args[i] = v
	}
	switch x.Kind {
	case sql.FuncCustom:
		fn := ev.env.CustomOperator(x.Name)
		if fn == nil {
			return types.Value{}, fmt.Errorf("exec: no operator %q registered", x.Name)
		}
		if len(args) != 2 {
			return types.Value{}, fmt.Errorf("exec: operator %q takes two arguments", x.Name)
		}
		ok, err := fn(args[0], args[1])
		if err != nil {
			return types.Value{}, fmt.Errorf("exec: operator %q: %w", x.Name, err)
		}
		return types.NewBool(ok), nil
	case sql.FuncUniText:
		if len(args) != 2 {
			return types.Value{}, fmt.Errorf("exec: unitext takes (text, lang)")
		}
		lang, ok := types.LangFromName(args[1].Text())
		if !ok {
			return types.Value{}, fmt.Errorf("exec: unknown language %q", args[1].Text())
		}
		u := ev.env.Phonetic().Materialize(types.Compose(args[0].Text(), lang))
		return types.NewUniText(u), nil
	case sql.FuncText:
		if args[0].IsNull() {
			return types.Null(), nil
		}
		return types.NewText(args[0].Text()), nil
	case sql.FuncLang:
		if args[0].IsNull() {
			return types.Null(), nil
		}
		if args[0].Kind() != types.KindUniText {
			return types.Value{}, fmt.Errorf("exec: lang() takes a UNITEXT value")
		}
		return types.NewText(args[0].UniText().Lang.String()), nil
	case sql.FuncPhoneme:
		if args[0].IsNull() {
			return types.Null(), nil
		}
		if args[0].Kind() != types.KindUniText {
			return types.Value{}, fmt.Errorf("exec: phoneme() takes a UNITEXT value")
		}
		return types.NewText(ev.env.Phonetic().ToPhoneme(args[0].UniText())), nil
	default:
		return types.Value{}, fmt.Errorf("exec: function %s is not scalar", x.Kind)
	}
}

// Evaluator is the exported face of the expression evaluator, used by the
// engine for INSERT literal evaluation and by the outside-the-server client
// UDF library.
type Evaluator struct{ inner evaluator }

// NewEvaluator builds an Evaluator over the runtime environment.
func NewEvaluator(env Env) *Evaluator {
	return &Evaluator{inner: evaluator{env: env, stats: &RunStats{}}}
}

// Eval evaluates a compiled expression against a tuple (nil for
// constant-only expressions).
func (ev *Evaluator) Eval(e plan.Expr, t types.Tuple) (types.Value, error) {
	return ev.inner.eval(e, t)
}

// EvalBool evaluates a predicate with SQL semantics (NULL is false).
func (ev *Evaluator) EvalBool(e plan.Expr, t types.Tuple) (bool, error) {
	return ev.inner.evalBool(e, t)
}
