package histogram

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func skewedKeys(n int) []string {
	// Zipf-ish head plus a long tail of near-singletons.
	var keys []string
	for i := 0; len(keys) < n; i++ {
		reps := n / ((i + 1) * (i + 2))
		if reps == 0 {
			reps = 1
		}
		for j := 0; j < reps && len(keys) < n; j++ {
			keys = append(keys, fmt.Sprintf("val%03d", i))
		}
	}
	return keys
}

func TestBuildEmpty(t *testing.T) {
	h := Build(nil, 10)
	if h.TotalRows != 0 || h.Distinct() != 0 {
		t.Error("empty histogram must be all-zero")
	}
	if h.EqSelectivity("x") != 0 {
		t.Error("empty histogram selectivity must be 0")
	}
	if h.ApproxSelectivity("x", 2) != 0 {
		t.Error("empty histogram approx selectivity must be 0")
	}
}

func TestBuildFrequentOrdering(t *testing.T) {
	h := Build(skewedKeys(1000), 10)
	if len(h.Frequent) != 10 {
		t.Fatalf("frequent count = %d", len(h.Frequent))
	}
	for i := 1; i < len(h.Frequent); i++ {
		if h.Frequent[i].Count > h.Frequent[i-1].Count {
			t.Error("frequent buckets must be sorted by count desc")
		}
	}
	if h.Frequent[0].Key != "val000" {
		t.Errorf("most frequent = %q", h.Frequent[0].Key)
	}
	var freqRows int64
	for _, b := range h.Frequent {
		freqRows += b.Count
	}
	if h.TailRows != h.TotalRows-freqRows {
		t.Error("TailRows accounting")
	}
}

func TestBuildFewDistinct(t *testing.T) {
	h := Build([]string{"a", "b", "a", "a", "b", "c"}, 10)
	if len(h.Frequent) != 3 || h.TailRows != 0 || h.TailDistinct != 0 {
		t.Errorf("small-domain histogram: %+v", h)
	}
	if got := h.EqSelectivity("a"); got != 0.5 {
		t.Errorf("EqSelectivity(a) = %g, want 0.5", got)
	}
	if got := h.EqSelectivity("zzz"); got != 0 {
		t.Errorf("EqSelectivity(zzz) = %g, want 0 with no tail", got)
	}
}

func TestEqSelectivityTail(t *testing.T) {
	h := Build(skewedKeys(1000), 5)
	// A tail value's selectivity is TailRows/TailDistinct/Total.
	want := float64(h.TailRows) / float64(h.TailDistinct) / float64(h.TotalRows)
	if got := h.EqSelectivity("not-a-frequent-value"); got != want {
		t.Errorf("tail selectivity = %g, want %g", got, want)
	}
}

func TestSelectivityBounds(t *testing.T) {
	f := func(seed int64, threshold uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := make([]string, 200)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", rng.Intn(30))
		}
		h := Build(keys, 10)
		for _, q := range []string{"k0", "k100", "zz"} {
			for _, sel := range []float64{
				h.EqSelectivity(q),
				h.ApproxSelectivity(q, int(threshold%5)),
				h.RangeSelectivity("a", "z", true, true),
			} {
				if sel < 0 || sel > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestApproxSelectivityGrowsWithThreshold(t *testing.T) {
	keys := []string{"nehru", "neru", "nehrou", "gandi", "gandhi", "patel", "menon", "saha", "bose", "raman", "nehru", "nehru"}
	h := Build(keys, 10)
	prev := -1.0
	for k := 0; k <= 4; k++ {
		sel := h.ApproxSelectivity("nehru", k)
		if sel < prev {
			t.Errorf("selectivity decreased at threshold %d: %g < %g", k, sel, prev)
		}
		prev = sel
	}
	if h.ApproxSelectivity("nehru", 0) < h.EqSelectivity("nehru") {
		t.Error("approx at k=0 must cover exact matches")
	}
}

func TestApproxSelectivityAccuracyOnSkewedData(t *testing.T) {
	// The frequent values dominate; the estimate should land within a
	// factor of ~3 of the truth for queries near a frequent value.
	keys := skewedKeys(5000)
	h := Build(keys, 10)
	truth := 0
	for _, k := range keys {
		if k == "val000" || k == "val001" {
			truth++ // within distance 1 of "val000": val001..val009 differ in last char? "val000" vs "val001" distance 1
		}
	}
	_ = truth
	est := h.ApproxSelectivity("val000", 1)
	// Count true matches.
	real := 0
	for _, k := range keys {
		if within1(k, "val000") {
			real++
		}
	}
	trueSel := float64(real) / float64(len(keys))
	if est < trueSel/4 || est > trueSel*4 {
		t.Errorf("estimate %g vs truth %g: off by more than 4x", est, trueSel)
	}
}

func within1(a, b string) bool {
	if a == b {
		return true
	}
	if len(a) != len(b) {
		return false
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	return diff <= 1
}

func TestRangeSelectivity(t *testing.T) {
	var keys []string
	for i := 0; i < 100; i++ {
		keys = append(keys, fmt.Sprintf("%03d", i))
	}
	h := Build(keys, 10)
	full := h.RangeSelectivity("", "", false, false)
	if full < 0.99 {
		t.Errorf("open range = %g, want ~1", full)
	}
	half := h.RangeSelectivity("000", "049", true, true)
	if half < 0.2 || half > 0.8 {
		t.Errorf("half range = %g, want ~0.5", half)
	}
	empty := h.RangeSelectivity("zzz", "zzzz", true, true)
	if empty > 0.2 {
		t.Errorf("out-of-domain range = %g", empty)
	}
}

func TestJoinSelectivity(t *testing.T) {
	a := Build(skewedKeys(1000), 10)
	b := Build(skewedKeys(500), 10)
	sel := a.JoinSelectivity(b)
	want := 1 / float64(max64(a.Distinct(), b.Distinct()))
	if sel != want {
		t.Errorf("JoinSelectivity = %g, want %g", sel, want)
	}
	empty := Build(nil, 10)
	if got := a.JoinSelectivity(empty); got != 0 {
		t.Errorf("join with empty = %g", got)
	}
}

func TestApproxJoinSelectivityGrowsWithThreshold(t *testing.T) {
	keys := []string{"nehru", "neru", "nehrou", "gandi", "gandhi", "patel", "menon"}
	h := Build(keys, 10)
	s0 := h.ApproxJoinSelectivity(h, 0)
	s3 := h.ApproxJoinSelectivity(h, 3)
	if s3 < s0 {
		t.Errorf("approx join selectivity must grow with threshold: %g < %g", s3, s0)
	}
	if s0 <= 0 || s3 > 1 {
		t.Errorf("bounds: s0=%g s3=%g", s0, s3)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestAvgKeyLen(t *testing.T) {
	h := Build([]string{"ab", "abcd"}, 10)
	if h.AvgKeyLen != 3 {
		t.Errorf("AvgKeyLen = %g", h.AvgKeyLen)
	}
}

func TestMinMax(t *testing.T) {
	h := Build([]string{"m", "a", "z", "q"}, 2)
	if h.Min != "a" || h.Max != "z" {
		t.Errorf("Min/Max = %q/%q", h.Min, h.Max)
	}
}

// TestEqSelectivitySumsToOne: summing EqSelectivity over every distinct
// value must recover ~1.0 (frequent values exactly, tail uniformly).
func TestEqSelectivitySumsToOne(t *testing.T) {
	keys := skewedKeys(2000)
	h := Build(keys, 10)
	distinct := map[string]bool{}
	for _, k := range keys {
		distinct[k] = true
	}
	sum := 0.0
	for k := range distinct {
		sum += h.EqSelectivity(k)
	}
	if sum < 0.98 || sum > 1.02 {
		t.Errorf("selectivities sum to %g, want ~1", sum)
	}
}
