package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"github.com/mural-db/mural/internal/metrics"
	"github.com/mural-db/mural/internal/obs"
)

// MetricsServer is the optional HTTP scrape endpoint. It is independent of
// the wire-protocol Server so it can also front an embedded Engine.
type MetricsServer struct {
	ln   net.Listener
	srv  *http.Server
	addr string
}

// MetricsConfig parameterizes the observability HTTP endpoint.
type MetricsConfig struct {
	// Registry to scrape; nil means metrics.Default.
	Registry *metrics.Registry
	// Statements, when set, serves GET /statements as a JSON array of
	// statement-statistics aggregates (wire it to Engine.Statements).
	Statements func() []obs.StmtRow
	// EnablePprof mounts the runtime profiling handlers (CPU, heap,
	// goroutine, ...) under /debug/pprof/ on this listener. Off by default:
	// profiles expose internals and a CPU profile costs real cycles, so the
	// operator opts in per endpoint.
	EnablePprof bool
}

// MetricsHandler serves a registry: Prometheus text exposition at the bare
// path, JSON when the client asks for it (Accept: application/json or
// ?format=json).
func MetricsHandler(reg *metrics.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wantJSON := r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// StatementsHandler serves a statement-statistics snapshot as JSON. A nil or
// empty snapshot serves [] rather than null so consumers always get an array.
func StatementsHandler(snapshot func() []obs.StmtRow) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rows := snapshot()
		if rows == nil {
			rows = []obs.StmtRow{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rows)
	})
}

// StartMetrics serves the default metrics registry over HTTP at addr
// ("127.0.0.1:0" for an ephemeral port): GET /metrics returns Prometheus
// text, GET /metrics?format=json (or Accept: application/json) returns JSON.
// The returned server's Addr reports the bound address.
func StartMetrics(addr string) (*MetricsServer, error) {
	return StartMetricsWith(addr, MetricsConfig{})
}

// StartMetricsWith is StartMetrics plus the optional observability routes:
// /statements (statement aggregates as JSON) and /debug/pprof/ (profiling,
// gated behind EnablePprof).
func StartMetricsWith(addr string, cfg MetricsConfig) (*MetricsServer, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	if cfg.Statements != nil {
		mux.Handle("/statements", StatementsHandler(cfg.Statements))
	}
	if cfg.EnablePprof {
		// Mounted explicitly on this mux: importing net/http/pprof registers
		// on http.DefaultServeMux, which this server never exposes.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	ms := &MetricsServer{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		addr: ln.Addr().String(),
	}
	go func() { _ = ms.srv.Serve(ln) }()
	return ms, nil
}

// Addr returns the bound listen address.
func (m *MetricsServer) Addr() string { return m.addr }

// Close stops the endpoint.
func (m *MetricsServer) Close() error { return m.srv.Close() }
