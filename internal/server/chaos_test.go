package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/mural-db/mural/internal/client"
	"github.com/mural-db/mural/internal/leakcheck"
	"github.com/mural-db/mural/internal/netfault"
	"github.com/mural-db/mural/mural"
)

// Chaos harness: both halves of the wire run through a fault injector that
// stalls, resets, and splits writes while concurrent sessions hammer the
// server. Individual operations may fail — that is the point — but the
// server must never panic or leak a goroutine, and once the faults are
// switched off a clean connection must work against the same server.
//
// Run it under -race: the fault mix forces the error paths (short writes,
// mid-frame resets, deadline hits) that the happy-path tests never touch.
func TestChaosNetworkFaults(t *testing.T) {
	leakcheck.Check(t)
	eng, err := mural.Open(mural.Config{})
	if err != nil {
		t.Fatal(err)
	}
	inj := netfault.New(netfault.Config{
		Seed:         42,
		PartialWrite: 0.4,
		Stall:        0.05,
		StallFor:     time.Millisecond,
		Reset:        0.03,
	})
	srv := New(eng)
	srv.ConnWrap = inj.Wrap
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})

	panicsBefore := mPanics.Value()

	// Seed the schema over a clean connection before the storm.
	inj.SetEnabled(false)
	setup, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec(`CREATE TABLE kv (id INT, name UNITEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec(`INSERT INTO kv VALUES (1, unitext('nehru', english)), (2, unitext('gandhi', english))`); err != nil {
		t.Fatal(err)
	}
	_ = setup.Close()
	inj.SetEnabled(true)

	dialer := client.Dialer{
		Retry:     client.RetryPolicy{Attempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		OpTimeout: 2 * time.Second,
		Wrap:      inj.Wrap,
	}

	const (
		sessions = 6
		opsPer   = 15
	)
	var wg sync.WaitGroup
	var okOps, failedOps int64
	var opMu sync.Mutex
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for op := 0; op < opsPer; op++ {
				conn, err := dialer.Dial(addr)
				if err != nil {
					opMu.Lock()
					failedOps++
					opMu.Unlock()
					continue
				}
				q := `SELECT count(*) FROM kv WHERE name LEXEQUAL 'nehru' THRESHOLD 1 IN english`
				if op%3 == 0 {
					q = fmt.Sprintf(`SELECT id FROM kv WHERE id = %d`, op%2+1)
				}
				cur, err := conn.Query(q)
				if err == nil {
					_, err = cur.All()
				}
				opMu.Lock()
				if err != nil {
					failedOps++
				} else {
					okOps++
				}
				opMu.Unlock()
				_ = conn.Close()
			}
		}(s)
	}
	wg.Wait()

	if got := mPanics.Value(); got != panicsBefore {
		t.Fatalf("server recovered %d panics during the fault storm, want 0", got-panicsBefore)
	}
	stats := inj.Stats()
	if stats.PartialWrites == 0 {
		t.Error("fault storm fired no partial writes; the harness is not exercising anything")
	}
	t.Logf("chaos: %d ops ok, %d failed; faults fired: %+v", okOps, failedOps, stats)

	// Faults off: the same server serves a clean connection correctly.
	inj.SetEnabled(false)
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("clean dial after storm: %v", err)
	}
	defer conn.Close()
	cur, err := conn.Query(`SELECT count(*) FROM kv`)
	if err != nil {
		t.Fatalf("clean query after storm: %v", err)
	}
	rows, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 2 {
		t.Errorf("count after storm = %v, want 2", rows[0])
	}
}
