package bench

import (
	"fmt"
	"time"
)

// Table4Row is one cell group of the paper's Table 4: an implementation
// (core / outside-the-server) with an index configuration, measured on scan
// and join queries.
type Table4Row struct {
	Impl    string // "core" or "outside"
	Index   string // "none", "mtree", "mdi"
	ScanSec float64
	JoinSec float64
	// ScanMatches/JoinMatches sanity-check that every configuration computed
	// the same answers.
	ScanMatches int64
	JoinMatches int64
}

// Table4Config parameterizes the experiment.
type Table4Config struct {
	Names      int
	ProbeNames int
	Threshold  int
	// Queries bounds how many scan queries are averaged.
	Queries int
	Seed    int64
}

// RunTable4 reproduces Table 4: Ψ scan and join performance for the core
// implementation (with and without the M-Tree) against the
// outside-the-server implementation (with and without the MDI B-tree
// index). The expected shape: core beats outside by 1-2+ orders of
// magnitude, and the M-Tree helps the core only marginally (§5.3).
func RunTable4(cfg Table4Config) ([]Table4Row, error) {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 5
	}
	db, err := NewNamesDB(NamesConfig{Names: cfg.Names, ProbeNames: cfg.ProbeNames, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	queries := db.Queries
	if len(queries) > cfg.Queries {
		queries = queries[:cfg.Queries]
	}
	k := cfg.Threshold

	var rows []Table4Row

	// --- Core, no index ---
	if _, err := db.Eng.Exec(`SET enable_mtree = off`); err != nil {
		return nil, err
	}
	coreScan := func() (float64, int64, error) {
		var total time.Duration
		var matches int64
		for _, q := range queries {
			res, err := db.Eng.Exec(fmt.Sprintf(
				`SELECT count(*) FROM names WHERE name LEXEQUAL %s THRESHOLD %d`, quote(q.Text), k))
			if err != nil {
				return 0, 0, err
			}
			total += res.Elapsed
			matches += res.Rows[0][0].Int()
		}
		return total.Seconds() / float64(len(queries)), matches, nil
	}
	coreJoin := func() (float64, int64, error) {
		res, err := db.Eng.Exec(fmt.Sprintf(
			`SELECT count(*) FROM probe p, names n WHERE p.name LEXEQUAL n.name THRESHOLD %d`, k))
		if err != nil {
			return 0, 0, err
		}
		return res.Elapsed.Seconds(), res.Rows[0][0].Int(), nil
	}
	scanSec, scanM, err := coreScan()
	if err != nil {
		return nil, err
	}
	joinSec, joinM, err := coreJoin()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table4Row{Impl: "core", Index: "none",
		ScanSec: scanSec, JoinSec: joinSec, ScanMatches: scanM, JoinMatches: joinM})

	// --- Core, M-Tree ---
	if _, err := db.Eng.Exec(`SET enable_mtree = on`); err != nil {
		return nil, err
	}
	scanSec, scanM, err = coreScan()
	if err != nil {
		return nil, err
	}
	joinSec, joinM, err = coreJoin()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table4Row{Impl: "core", Index: "mtree",
		ScanSec: scanSec, JoinSec: joinSec, ScanMatches: scanM, JoinMatches: joinM})

	// --- Outside the server, no index: ship everything, evaluate client-side ---
	db.Conn.FetchSize = 1 // the PL/SQL cursor loop
	start := time.Now()
	var outScanM int64
	for _, q := range queries {
		matches, _, err := clientPsiScan(db, q.Text, k)
		if err != nil {
			return nil, err
		}
		outScanM += matches
	}
	outScanSec := time.Since(start).Seconds() / float64(len(queries))

	start = time.Now()
	outJoinM, err := clientPsiJoin(db, k)
	if err != nil {
		return nil, err
	}
	outJoinSec := time.Since(start).Seconds()
	rows = append(rows, Table4Row{Impl: "outside", Index: "none",
		ScanSec: outScanSec, JoinSec: outJoinSec, ScanMatches: outScanM, JoinMatches: outJoinM})

	// --- Outside the server, MDI index ---
	start = time.Now()
	var mdiScanM int64
	for _, q := range queries {
		matches, _, err := clientPsiScanMDI(db, q.Text, k)
		if err != nil {
			return nil, err
		}
		mdiScanM += matches
	}
	mdiScanSec := time.Since(start).Seconds() / float64(len(queries))

	start = time.Now()
	mdiJoinM, err := clientPsiJoinMDI(db, k)
	if err != nil {
		return nil, err
	}
	mdiJoinSec := time.Since(start).Seconds()
	rows = append(rows, Table4Row{Impl: "outside", Index: "mdi",
		ScanSec: mdiScanSec, JoinSec: mdiJoinSec, ScanMatches: mdiScanM, JoinMatches: mdiJoinM})

	return rows, nil
}
