// Package metrics is the engine-wide observability substrate: a lock-cheap
// registry of named counters, gauges and bounded histograms that the hot
// paths (buffer pool, WAL, index searches, phoneme conversion, server
// dispatch) update with single atomic operations. The registry renders
// itself as Prometheus text exposition format or JSON for the server's
// /metrics endpoint, and supports snapshot/reset so benchmark harnesses can
// measure counter deltas across a workload.
//
// Design constraints, in order:
//
//  1. An update on a hot path is one atomic add — no map lookups, no locks.
//     Instrumented packages resolve their metrics once into package-level
//     vars at init.
//  2. Registration is idempotent (get-or-create), so any package can name a
//     metric without coordinating ownership.
//  3. Reading is approximate-consistent: a snapshot taken under load may mix
//     updates from in-flight operations, which is fine for monitoring.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by a delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// Histogram is a bounded histogram over int64 observations (typically
// nanoseconds or byte counts). Bucket bounds are inclusive upper limits;
// observations above the last bound land in the implicit +Inf bucket.
// Observe is a pair of atomic adds; there is no per-observation allocation.
type Histogram struct {
	bounds []int64 // sorted inclusive upper bounds
	counts []atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets returns (bound, cumulative count) pairs; the final pair has
// bound -1, meaning +Inf.
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, 0, len(h.bounds)+1)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		out = append(out, BucketCount{Bound: b, Count: cum})
	}
	cum += h.counts[len(h.bounds)].Load()
	out = append(out, BucketCount{Bound: -1, Count: cum})
	return out
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.count.Store(0)
}

// BucketCount is one cumulative histogram bucket. Bound -1 means +Inf.
type BucketCount struct {
	Bound int64
	Count int64
}

// DurationBuckets are nanosecond bounds suited to query/request latencies:
// 100µs to ~10s, roughly tripling.
var DurationBuckets = []int64{
	100_000, 300_000, 1_000_000, 3_000_000, 10_000_000, 30_000_000,
	100_000_000, 300_000_000, 1_000_000_000, 3_000_000_000, 10_000_000_000,
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	mu     sync.RWMutex
	cnt    map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cnt:    make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the engine's hot paths publish into.
var Default = NewRegistry()

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.cnt[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.cnt[name]; ok {
		return c
	}
	c = &Counter{}
	r.cnt[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// if needed. Bounds are ignored when the histogram already exists.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time copy of every metric's value.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// HistSnapshot is one histogram's snapshot.
type HistSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot captures every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.cnt)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.cnt {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets()}
	}
	return s
}

// Reset zeroes every metric (benchmark harnesses measure deltas with it).
// Metric identities are preserved: pointers held by instrumented packages
// stay valid.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.cnt {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// sortedKeys returns map keys in stable order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): counters as "<name> <value>", gauges likewise, histograms
// as the conventional _bucket/_sum/_count triple.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	for _, name := range sortedKeys(snap.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, snap.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := "+Inf"
			if b.Bound >= 0 {
				le = fmt.Sprintf("%d", b.Bound)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
