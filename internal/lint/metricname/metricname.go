// Package metricname enforces the metrics namespace documented in
// DESIGN.md: every name passed to a Registry's Counter/Gauge/Histogram must
// be a compile-time constant, snake_case under the mural_ prefix (which
// includes the observability families mural_stats_* and mural_trace_*),
// counters must end in _total while gauges and histograms must not, every
// histogram carries its unit as a suffix (_ns or _bytes), and no name may be
// registered at two distinct sites within one package (the registry
// get-or-creates, so duplicate sites mean two code paths silently share — or
// think they own — one series).
//
// The lint suite itself is tooling, not the engine: it must never register
// runtime metrics. Any registration reached from a lint package (directly,
// or through a summarized helper that transitively registers) is flagged,
// and the mural_lint_ name prefix is reserved-and-forbidden everywhere so a
// future lint-side metric cannot slip in under the main namespace rules.
package metricname

import (
	"go/ast"
	"go/constant"
	"strings"

	"github.com/mural-db/mural/internal/lint/analysis"
	"github.com/mural-db/mural/internal/lint/lintutil"
	"github.com/mural-db/mural/internal/lint/summary"
)

var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "metric names must be constant, mural_-prefixed snake_case; counters end in _total (gauges/histograms must not); histograms suffix their unit (_ns/_bytes); one registration site per name per package",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	seen := map[string]ast.Node{}
	lintPkg := isLintPkg(pass.ImportPath)
	table := summary.ForPkg(pass.Fset, pass.Pkg, pass.TypesInfo, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind := lintutil.CalleeName(call)
			switch kind {
			case "Counter", "Gauge", "Histogram":
			default:
				// Lint packages must stay metrics-free even through helpers:
				// a summarized callee that transitively registers is as bad
				// as a direct registration.
				if lintPkg {
					if fn := lintutil.StaticCallee(pass.TypesInfo, call); fn != nil && table.RegistersMetric(fn) {
						pass.Reportf(call.Pos(),
							"lint packages must not register metrics: %s transitively registers a metric series", fn.Name())
					}
				}
				return true
			}
			if lintutil.ReceiverTypeName(pass.TypesInfo, call) != "Registry" || len(call.Args) == 0 {
				return true
			}
			if lintPkg {
				pass.Reportf(call.Pos(), "lint packages must not register metrics: the analyzers are tooling, not the engine")
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "metric name must be a compile-time constant string")
				return true
			}
			name := constant.StringVal(tv.Value)
			checkName(pass, arg, kind, name)
			if prev, dup := seen[name]; dup {
				pass.Reportf(arg.Pos(), "metric %q is registered at multiple sites in this package (also at line %d); register once and share the handle",
					name, pass.Position(prev.Pos()).Line)
			} else {
				seen[name] = arg
			}
			return true
		})
	}
	return nil
}

func checkName(pass *analysis.Pass, at ast.Node, kind, name string) {
	if !snakeCase(name) {
		pass.Reportf(at.Pos(), "metric name %q is not snake_case (lowercase letters, digits, single underscores)", name)
		return
	}
	const prefix = "mural_"
	if len(name) < len(prefix) || name[:len(prefix)] != prefix {
		pass.Reportf(at.Pos(), "metric name %q is outside the documented namespace: names must start with %q", name, prefix)
		return
	}
	// mural_lint_* is reserved-and-forbidden: the lint suite never exports
	// runtime series, so any name under that prefix is a mistake wherever it
	// appears.
	if strings.HasPrefix(name, "mural_lint_") {
		pass.Reportf(at.Pos(), "metric name %q uses the reserved prefix mural_lint_: the lint suite does not export metrics", name)
		return
	}
	switch kind {
	case "Counter":
		if !hasSuffix(name, "_total") {
			pass.Reportf(at.Pos(), "counter name %q must end in _total", name)
		}
	case "Gauge":
		// _total promises a monotone cumulative series; a settable gauge
		// breaks that contract for every downstream rate() consumer.
		if hasSuffix(name, "_total") {
			pass.Reportf(at.Pos(), "gauge name %q must not end in _total (reserved for counters)", name)
		}
	case "Histogram":
		if hasSuffix(name, "_total") {
			pass.Reportf(at.Pos(), "histogram name %q must not end in _total (reserved for counters)", name)
		} else if !hasSuffix(name, "_ns") && !hasSuffix(name, "_bytes") {
			pass.Reportf(at.Pos(), "histogram name %q must carry its unit as a suffix (_ns or _bytes)", name)
		}
	}
}

// isLintPkg reports import paths inside the lint suite. Bare paths named
// lintguard* are analysistest packages exercising this rule.
func isLintPkg(importPath string) bool {
	return strings.Contains(importPath, "internal/lint") ||
		strings.HasPrefix(importPath, "lintguard")
}

// snakeCase: ^[a-z][a-z0-9]*(_[a-z0-9]+)*$
func snakeCase(s string) bool {
	if s == "" || !(s[0] >= 'a' && s[0] <= 'z') {
		return false
	}
	prevUnderscore := false
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			prevUnderscore = false
		case c == '_':
			if prevUnderscore {
				return false
			}
			prevUnderscore = true
		default:
			return false
		}
	}
	return !prevUnderscore
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
