package plan

import (
	"fmt"
	"strings"
	"time"

	"github.com/mural-db/mural/internal/sql"
	"github.com/mural-db/mural/internal/types"
)

// OpType identifies a physical operator.
type OpType int

// Physical operators.
const (
	OpSeqScan OpType = iota
	OpBTreeScan
	OpMTreeScan
	OpMDIScan
	OpQGramScan
	OpFilter
	OpProject
	OpNLJoin
	OpHashJoin
	OpPsiJoin      // nested-loops Ψ join on materialized phonemes
	OpPsiIndexJoin // probe an M-Tree per outer row
	OpOmegaJoin    // RHS-outer nested loops with closure memoization (§4.3)
	OpAggregate
	OpSort
	OpLimit
	OpDistinct
	OpMaterialize
	OpGather // exchange: merge N workers running the child subtree in parallel
	OpRemote // ship the child subtree to a shard and stream its rows back
)

// String names the operator as EXPLAIN prints it.
func (o OpType) String() string {
	switch o {
	case OpSeqScan:
		return "SeqScan"
	case OpBTreeScan:
		return "IndexScan(BTree)"
	case OpMTreeScan:
		return "IndexScan(MTree)"
	case OpMDIScan:
		return "IndexScan(MDI)"
	case OpQGramScan:
		return "IndexScan(QGram)"
	case OpFilter:
		return "Filter"
	case OpProject:
		return "Project"
	case OpNLJoin:
		return "NestLoopJoin"
	case OpHashJoin:
		return "HashJoin"
	case OpPsiJoin:
		return "PsiJoin(NL)"
	case OpPsiIndexJoin:
		return "PsiJoin(MTree)"
	case OpOmegaJoin:
		return "OmegaJoin(NL,closure-cache)"
	case OpAggregate:
		return "Aggregate"
	case OpSort:
		return "Sort"
	case OpLimit:
		return "Limit"
	case OpDistinct:
		return "Distinct"
	case OpMaterialize:
		return "Materialize"
	case OpGather:
		return "Gather"
	case OpRemote:
		return "Remote"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// AggSpec is one aggregate computed by an Aggregate node.
type AggSpec struct {
	Kind sql.FuncKind
	Arg  Expr // nil for COUNT(*)
	// Merge marks the coordinator half of a distributed aggregate: Arg
	// references a partial result column, and COUNT sums the int64 partial
	// counts instead of counting rows (SUM/MIN/MAX merge under their own
	// combine function unchanged).
	Merge bool
}

// IndexCond carries the index probe parameters of an index scan.
type IndexCond struct {
	// Index is the catalog index name.
	Index string
	// EqKey probes equality (BTree); Lo/Hi probe a range; for metric scans
	// Probe and Threshold drive the search.
	EqKey     Expr
	Lo, Hi    Expr
	Probe     Expr // Ψ query operand (constant side)
	Threshold int
	Langs     []types.LangID
	// Col is the indexed column's position in the base-table schema.
	Col int
}

// Node is one physical plan operator. EstRows and EstCost are the
// optimizer's predictions; the executor fills ActualRows/ActualNs when
// EXPLAIN ANALYZE runs.
type Node struct {
	Op       OpType
	Children []*Node
	Cols     []ColInfo

	EstRows float64
	EstCost float64

	// Scan fields.
	Table string // catalog table name
	Alias string
	Index *IndexCond

	// Filter / join condition (positional, over the node's input schema;
	// for joins the schema is left ++ right).
	Cond Expr

	// Hash join equi-columns (positions in left/right schemas).
	HashLeft, HashRight int

	// Psi join parameters.
	PsiThreshold int
	PsiLangs     []types.LangID
	// PsiLeftCol/PsiRightCol are the operand positions in the joint schema.
	PsiLeftCol, PsiRightCol int

	// Omega join: operand positions in the joint schema; RHSOuter records
	// that the planner made the closure-providing side the outer input.
	OmegaLeftCol, OmegaRightCol int
	OmegaLangs                  []types.LangID
	RHSOuter                    bool

	// Projection.
	Projs    []Expr
	ColNames []string

	// Aggregation.
	GroupBy []Expr
	Aggs    []AggSpec

	// Sort keys (positions are relative to the child's schema).
	SortKeys []Expr
	SortDesc []bool

	// Limit.
	LimitN int64

	// Gather: number of worker goroutines running the child subtree.
	Workers int
	// Remote: which shard runs the child fragment, and where it listens.
	// The child subtree is serialized and shipped, never executed locally.
	ShardID   int
	ShardAddr string
	// Parallel marks a scan that each Gather worker runs over a disjoint
	// morsel (page range) of the table instead of the whole heap.
	Parallel bool

	// Selectivity-feedback annotation: when FbKind is non-empty the node's
	// measured output cardinality is an observation for the (FbKind,
	// FbTable, FbBand) cell of the engine's feedback sketch. FbInput is the
	// per-loop input cardinality for nodes whose input is implicit (index
	// scans probe the whole table); 0 means "divide by the child operator's
	// measured rows".
	FbKind  string
	FbTable string
	FbBand  int
	FbInput float64
}

// Schema returns the output columns.
func (n *Node) Schema() []ColInfo { return n.Cols }

// EstimatedRows is the uniform cardinality accessor: the optimizer's own
// estimate when the node carries one, else the largest child estimate (pure
// pass-through operators like Materialize or Project never shrink their
// input, so inheriting the child's cardinality beats printing a zero).
func (n *Node) EstimatedRows() float64 {
	if n.EstRows > 0 {
		return n.EstRows
	}
	max := 0.0
	for _, c := range n.Children {
		if r := c.EstimatedRows(); r > max {
			max = r
		}
	}
	return max
}

// Actual holds executor-measured figures for one plan node; the exec package
// fills it during EXPLAIN ANALYZE. Counters are totals across all loops.
type Actual struct {
	Rows    int64
	Nexts   int64
	Loops   int64
	Elapsed time.Duration
}

// Format renders the plan tree in EXPLAIN style.
func Format(n *Node) string {
	var b strings.Builder
	format(&b, n, 0, nil)
	return b.String()
}

// FormatAnalyze renders the plan tree in EXPLAIN ANALYZE style: each node
// line carries estimated rows/cost plus the measured rows, loops and wall
// time looked up through actuals (which may report a miss for operators that
// never ran, printed as "never executed").
func FormatAnalyze(n *Node, actuals func(*Node) (Actual, bool)) string {
	var b strings.Builder
	format(&b, n, 0, actuals)
	return b.String()
}

func format(b *strings.Builder, n *Node, depth int, actuals func(*Node) (Actual, bool)) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	b.WriteString(n.Op.String())
	switch n.Op {
	case OpSeqScan:
		fmt.Fprintf(b, " %s", n.Table)
		if n.Alias != "" && n.Alias != n.Table {
			fmt.Fprintf(b, " AS %s", n.Alias)
		}
		if n.Parallel {
			b.WriteString(" [parallel]")
		}
	case OpGather:
		fmt.Fprintf(b, " workers=%d", n.Workers)
	case OpRemote:
		fmt.Fprintf(b, " shard=%d addr=%s", n.ShardID, n.ShardAddr)
	case OpBTreeScan, OpMTreeScan, OpMDIScan, OpQGramScan:
		fmt.Fprintf(b, " %s using %s", n.Table, n.Index.Index)
		if n.Index.Probe != nil {
			fmt.Fprintf(b, " probe=%s k=%d", ExprString(n.Index.Probe), n.Index.Threshold)
		}
		if n.Index.EqKey != nil {
			fmt.Fprintf(b, " key=%s", ExprString(n.Index.EqKey))
		}
		if n.Index.Lo != nil || n.Index.Hi != nil {
			b.WriteString(" range")
		}
	case OpHashJoin:
		fmt.Fprintf(b, " on $%d = $%d", n.HashLeft, n.HashRight)
	case OpPsiJoin, OpPsiIndexJoin:
		fmt.Fprintf(b, " k=%d", n.PsiThreshold)
	case OpLimit:
		fmt.Fprintf(b, " %d", n.LimitN)
	}
	if n.Cond != nil {
		fmt.Fprintf(b, " cond=[%s]", ExprString(n.Cond))
	}
	fmt.Fprintf(b, "  (rows=%.0f cost=%.1f)", n.EstimatedRows(), n.EstCost)
	if actuals != nil {
		if a, ok := actuals(n); ok {
			fmt.Fprintf(b, " (actual rows=%d loops=%d time=%s)", a.Rows, a.Loops, a.Elapsed.Round(time.Microsecond))
		} else {
			b.WriteString(" (never executed)")
		}
	}
	b.WriteString("\n")
	for _, c := range n.Children {
		format(b, c, depth+1, actuals)
	}
}
