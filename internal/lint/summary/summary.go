// Package summary computes per-function effect summaries for the murallint
// suite: which locks a function acquires and releases, which blocking
// operations it performs (and under which locks), whether it contains an
// amortized cancellation checkpoint, what it does with its parameters
// (releases them, takes ownership, or merely borrows them), and a handful of
// engine-specific effects (commits a WAL batch, releases governed memory,
// registers a metric, provably returns a nil error).
//
// Summaries are computed bottom-up: murallint loads every module package in
// dependency order (go list -deps lists dependencies first), adds each to one
// shared Table, then calls Freeze, which closes the direct facts over the
// call graph (a function that calls fsync transitively "performs fsync"; a
// helper that hands its parameter to a releasing helper transitively
// "releases its parameter"). After Freeze the table is immutable and safe
// for the driver's parallel analyzer workers.
//
// The intraprocedural scan is a structured walk, not a CFG: lock state is
// tracked linearly in source order, branch bodies run on a copy of the state,
// and a branch that terminates (returns) discards its lock effects — which
// models the universal `if err { mu.Unlock(); return err }` early-exit shape
// without path explosion. Function literals in `go` statements are skipped
// (their effects belong to another goroutine); other literals are folded into
// the enclosing function at their definition point. sync.Cond.Wait is never a
// blocking op (it atomically unlocks its mutex), and lock operations are only
// recognized when they resolve to the real sync.Mutex/RWMutex methods.
package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Key identifies one lock for held-set and ordering purposes. Keys are
// type-granular, not instance-granular: every *storage.Pool shares the key
// "storage.Pool.mu". That is exact for the engine's singleton locks and a
// documented approximation for per-instance latches.
type Key string

// OpKind distinguishes the two op records a function carries.
type OpKind int

const (
	// OpBlock is a directly performed blocking operation.
	OpBlock OpKind = iota
	// OpCall is a statically resolved call (the callee may block).
	OpCall
)

// Op is one operation observed in a function body, with the lock state the
// linear scan saw at that point.
type Op struct {
	Pos  token.Pos
	Kind OpKind
	// What describes a blocking op ("fsync", "channel send", ...).
	What string
	// Callee is the statically resolved callee for OpCall.
	Callee *types.Func
	// Held are the lock keys held (positively) at this op.
	Held []Key
	// Released are lock keys with a negative balance at this op: locks the
	// function has released on behalf of its caller (the hand-off idiom).
	Released []Key
}

// BlockOp is one (possibly transitive) blocking operation as seen by a
// caller: what blocks, through which call chain, and which caller-held locks
// are already released by the time it runs.
type BlockOp struct {
	What string
	// Via is the call chain from the summarized function to the op
	// ("commitBatch → CommitBatch → Wait"), empty for a direct op.
	Via string
	// Released holds lock keys that are handed off (released) on the path to
	// this op, so a caller holding one of them is safe.
	Released map[Key]bool
}

// OrderEdge is one observed acquisition ordering: To was acquired while From
// was held.
type OrderEdge struct {
	From, To Key
	Pos      token.Pos
}

// paramFlow records "parameter From of this function is passed as argument
// Arg of Callee" for the parameter-fate fixpoint.
type paramFlow struct {
	From   int
	Callee *types.Func
	Arg    int
}

// FuncInfo is the summary of one function.
type FuncInfo struct {
	Fn   *types.Func
	Name string // short display name ("Pool.CommitBatch")
	Pos  token.Pos

	// Ops are the function's blocking ops and static calls in source order.
	Ops []Op
	// Acquired are lock keys the function itself acquires (even if released).
	Acquired map[Key]bool
	// HandedOff are lock keys whose balance went negative at top level: the
	// function released a lock its caller holds.
	HandedOff  []Key
	HandoffPos token.Pos

	// HandoffOK: the declaration carries //lint:lock-handoff.
	HandoffOK bool
	// Exempt: the declaration carries //lint:lock-held-io — the function's
	// blocking effects are audited and do not propagate to callers.
	Exempt bool

	// Checkpoint: the function contains an amortized cancellation checkpoint
	// (directly, or — after Freeze — via a callee).
	Checkpoint bool
	// AlwaysNil: every return provably yields a nil error (after Freeze).
	AlwaysNil bool
	// CommitsBatch: the function (transitively) commits or aborts a WAL batch.
	CommitsBatch bool
	// ReleasesMem: the function (transitively) calls Resources.Release /
	// evaluator.release.
	ReleasesMem bool
	// RegistersMetric: the function (transitively) registers a metric.
	RegistersMetric bool

	// ParamReleased[i]: the function (transitively) releases parameter i
	// (calls Close/Unpin/Release/Abort on it, or hands it to a releasing
	// callee).
	ParamReleased []bool
	// ParamEscapes[i]: the function takes ownership of parameter i (stores,
	// returns, or sends it, or passes it to an unknown or escaping callee).
	ParamEscapes []bool

	nilCandidate bool
	errDeps      []*types.Func
	paramFlows   []paramFlow

	effBlocking []BlockOp
	effAcquired map[Key]bool
	effDone     bool
}

// Table holds the summaries of every scanned package.
type Table struct {
	fset   *token.FileSet
	funcs  map[*types.Func]*FuncInfo
	pkgs   map[*types.Package]bool
	edges  []OrderEdge
	frozen bool

	// pendingEdges are call sites under held locks whose callee acquisitions
	// become order edges at Freeze.
	pendingEdges []pendingEdge
}

type pendingEdge struct {
	held   []Key
	callee *types.Func
	pos    token.Pos
}

// NewTable creates an empty table over one file set.
func NewTable(fset *token.FileSet) *Table {
	return &Table{
		fset:  fset,
		funcs: map[*types.Func]*FuncInfo{},
		pkgs:  map[*types.Package]bool{},
	}
}

var (
	globalMu sync.RWMutex
	global   *Table
)

// SetGlobal installs a frozen table for ForPass lookups (the murallint
// driver precomputes summaries for every loaded package, then analyzers run
// in parallel against the shared table).
func SetGlobal(t *Table) {
	if t != nil && !t.frozen {
		panic("summary: SetGlobal of unfrozen table")
	}
	globalMu.Lock()
	global = t
	globalMu.Unlock()
}

// ForPkg returns the table covering pkg: the global precomputed table when it
// includes pkg, else a fresh single-package table (the analysistest path,
// where cross-package callees are out of scope anyway).
func ForPkg(fset *token.FileSet, pkg *types.Package, info *types.Info, files []*ast.File) *Table {
	globalMu.RLock()
	g := global
	globalMu.RUnlock()
	if g != nil && g.pkgs[pkg] {
		return g
	}
	t := NewTable(fset)
	t.AddPackage(pkg, info, files)
	t.Freeze()
	return t
}

// Lookup returns the summary for fn, or nil when fn is outside the table
// (standard library, interface method, or unexported via another module).
func (t *Table) Lookup(fn *types.Func) *FuncInfo {
	if t == nil || fn == nil {
		return nil
	}
	return t.funcs[fn]
}

// Blocking returns the transitive blocking operations of fn (empty for
// unknown or exempt functions).
func (t *Table) Blocking(fn *types.Func) []BlockOp {
	if f := t.Lookup(fn); f != nil {
		return f.effBlocking
	}
	return nil
}

// Checkpoints reports whether fn transitively contains a cancellation
// checkpoint.
func (t *Table) Checkpoints(fn *types.Func) bool {
	f := t.Lookup(fn)
	return f != nil && f.Checkpoint
}

// AlwaysNilError reports whether fn provably returns a nil error on every
// path (false for unknown functions).
func (t *Table) AlwaysNilError(fn *types.Func) bool {
	f := t.Lookup(fn)
	return f != nil && f.AlwaysNil
}

// CommitsBatch reports whether fn transitively commits or aborts a WAL batch.
func (t *Table) CommitsBatch(fn *types.Func) bool {
	f := t.Lookup(fn)
	return f != nil && f.CommitsBatch
}

// ReleasesMem reports whether fn transitively releases governed memory.
func (t *Table) ReleasesMem(fn *types.Func) bool {
	f := t.Lookup(fn)
	return f != nil && f.ReleasesMem
}

// RegistersMetric reports whether fn transitively registers a metric.
func (t *Table) RegistersMetric(fn *types.Func) bool {
	f := t.Lookup(fn)
	return f != nil && f.RegistersMetric
}

// ParamFate classifies what a callee does with one argument position.
type ParamFate int

const (
	// FateUnknown: the callee is not summarized; assume nothing.
	FateUnknown ParamFate = iota
	// FateBorrows: the callee neither releases nor keeps the argument.
	FateBorrows
	// FateReleases: the callee releases the argument.
	FateReleases
	// FateEscapes: the callee takes ownership of the argument.
	FateEscapes
)

// ArgFate reports what fn does with its i'th parameter.
func (t *Table) ArgFate(fn *types.Func, i int) ParamFate {
	f := t.Lookup(fn)
	if f == nil || i < 0 || i >= len(f.ParamReleased) {
		return FateUnknown
	}
	switch {
	case f.ParamReleased[i]:
		return FateReleases
	case f.ParamEscapes[i]:
		return FateEscapes
	default:
		return FateBorrows
	}
}

// OrderEdges returns the deduplicated lock acquisition-order edges.
func (t *Table) OrderEdges() []OrderEdge { return t.edges }

// Cycle is one acquisition-order cycle: the locks of a strongly connected
// component of the order graph, plus a deterministic anchor position.
type Cycle struct {
	Keys []Key
	Pos  token.Pos
}

// Cycles detects acquisition-order cycles in the lock-order graph. Each
// strongly connected component with an internal edge yields one cycle,
// anchored at its smallest-position edge so exactly one package reports it.
func (t *Table) Cycles() []Cycle {
	adj := map[Key][]OrderEdge{}
	for _, e := range t.edges {
		adj[e.From] = append(adj[e.From], e)
	}
	// Tarjan SCC over the key graph.
	index := map[Key]int{}
	low := map[Key]int{}
	onStack := map[Key]bool{}
	var stack []Key
	var sccs [][]Key
	next := 0
	var strong func(k Key)
	strong = func(k Key) {
		index[k] = next
		low[k] = next
		next++
		stack = append(stack, k)
		onStack[k] = true
		for _, e := range adj[k] {
			w := e.To
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[k] {
					low[k] = low[w]
				}
			} else if onStack[w] && index[w] < low[k] {
				low[k] = index[w]
			}
		}
		if low[k] == index[k] {
			var scc []Key
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == k {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	var keys []Key
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if _, seen := index[k]; !seen {
			strong(k)
		}
	}
	var out []Cycle
	for _, scc := range sccs {
		in := map[Key]bool{}
		for _, k := range scc {
			in[k] = true
		}
		// A cycle needs an edge inside the SCC (covers self-loops too).
		anchor := token.NoPos
		cyclic := false
		for _, k := range scc {
			for _, e := range adj[k] {
				if !in[e.To] {
					continue
				}
				if len(scc) > 1 || e.To == k {
					cyclic = true
					if anchor == token.NoPos || e.Pos < anchor {
						anchor = e.Pos
					}
				}
			}
		}
		if !cyclic {
			continue
		}
		sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
		out = append(out, Cycle{Keys: scc, Pos: anchor})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// AddPackage scans every function of one type-checked package into the
// table. Packages must be added in dependency order for cross-package call
// resolution (go list -deps order); Freeze closes the remaining same-package
// and cyclic facts.
func (t *Table) AddPackage(pkg *types.Package, info *types.Info, files []*ast.File) {
	if t.frozen {
		panic("summary: AddPackage after Freeze")
	}
	t.pkgs[pkg] = true
	dirs := collectDirectives(t.fset, files)
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := t.scanFunc(pkg, info, fd, obj, dirs)
			t.funcs[obj] = fi
		}
	}
}

// directives indexes //lint: comments by file:line for the scanner (the
// lintutil.Annotations type is pass-oriented; the summary layer keeps its own
// tiny copy to stay independent of the analysis driver).
type directives map[string]map[string]bool

func collectDirectives(fset *token.FileSet, files []*ast.File) directives {
	d := directives{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:") {
					continue
				}
				name := strings.TrimPrefix(text, "lint:")
				if i := strings.IndexAny(name, " \t"); i >= 0 {
					name = name[:i]
				}
				p := fset.Position(c.Pos())
				key := p.Filename + ":" + itoa(p.Line)
				if d[key] == nil {
					d[key] = map[string]bool{}
				}
				d[key][name] = true
			}
		}
	}
	return d
}

func (d directives) has(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		if d[p.Filename+":"+itoa(line)][name] {
			return true
		}
	}
	return false
}

func itoa(n int) string {
	if n <= 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
