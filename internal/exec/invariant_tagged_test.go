//go:build muralinvariants

package exec

import (
	"strings"
	"testing"
)

func TestCursorNextAfterClosePanics(t *testing.T) {
	c := &Cursor{it: &sliceIter{}}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "Next on a closed cursor") {
			t.Fatalf("expected no-Next-after-Close invariant panic, got %v", r)
		}
	}()
	_, _, _ = c.Next()
}
