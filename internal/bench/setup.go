// Package bench implements the paper's experiments as reusable harnesses:
// every table and figure of the evaluation section (§5) maps to one Run*
// function here, invoked both by the root bench_test.go (go test -bench)
// and by cmd/benchrunner (which prints the rows/series the paper reports).
package bench

import (
	"fmt"
	"math"
	"strings"

	"github.com/mural-db/mural/internal/client"
	"github.com/mural-db/mural/internal/dataset"
	"github.com/mural-db/mural/internal/phonetic"
	"github.com/mural-db/mural/internal/server"
	"github.com/mural-db/mural/internal/types"
	"github.com/mural-db/mural/internal/wordnet"
	"github.com/mural-db/mural/mural"
)

// insertBatch groups VALUES rows to keep statements reasonably sized.
const insertBatch = 500

// quote escapes a string literal.
func quote(s string) string { return "'" + strings.ReplaceAll(s, "'", "''") + "'" }

// uniTextLit renders a unitext(...) literal.
func uniTextLit(u types.UniText) string {
	return fmt.Sprintf("unitext(%s, %s)", quote(u.Text), u.Lang)
}

// batchInsert sends rows in batches through fn (engine or wire Exec).
func batchInsert(table string, rows []string, exec func(q string) error) error {
	for i := 0; i < len(rows); i += insertBatch {
		j := i + insertBatch
		if j > len(rows) {
			j = len(rows)
		}
		if err := exec("INSERT INTO " + table + " VALUES " + strings.Join(rows[i:j], ",")); err != nil {
			return err
		}
	}
	return nil
}

// NamesDB is the Ψ experimental fixture: an engine holding the multilingual
// names dataset with every access path built (M-Tree for the core runs,
// pivot-distance column + B-tree for the outside-the-server MDI runs), plus
// a server and client for the outside path.
type NamesDB struct {
	Eng     *mural.Engine
	Srv     *server.Server
	Conn    *client.Conn
	Reg     *phonetic.Registry
	Records []dataset.NameRecord
	// Queries are representative query names (cluster bases) in English.
	Queries []types.UniText
	// Pivot is the MDI pivot used for the pdist column.
	Pivot string
}

// NamesConfig sizes the fixture.
type NamesConfig struct {
	// Names is the table size (default 5000; the paper used ~25000 — pass
	// that for full-scale runs).
	Names int
	// ProbeNames sizes the probe (outer) table for join runs.
	ProbeNames int
	Seed       int64
	// Tune, when set, adjusts the engine Config before Open — the
	// observability overhead harness uses it to build obs-on and obs-off
	// engines over the same dataset.
	Tune func(cfg *mural.Config)
}

// NewNamesDB builds the fixture.
func NewNamesDB(cfg NamesConfig) (*NamesDB, error) {
	if cfg.Names <= 0 {
		cfg.Names = 5000
	}
	if cfg.ProbeNames <= 0 {
		cfg.ProbeNames = 100
	}
	mcfg := mural.Config{}
	if cfg.Tune != nil {
		cfg.Tune(&mcfg)
	}
	eng, err := mural.Open(mcfg)
	if err != nil {
		return nil, err
	}
	db := &NamesDB{Eng: eng, Reg: phonetic.DefaultRegistry(), Pivot: "aeioun"}

	recs := dataset.GenerateNames(dataset.NamesConfig{Records: cfg.Names, Seed: cfg.Seed})
	db.Records = recs
	if _, err := eng.Exec(`CREATE TABLE names (id INT, name UNITEXT, pdist INT)`); err != nil {
		return nil, err
	}
	rows := make([]string, 0, len(recs))
	for _, r := range recs {
		pd := phonetic.EditDistance(r.Name.Phoneme, db.Pivot)
		rows = append(rows, fmt.Sprintf("(%d, %s, %d)", r.ID, uniTextLit(r.Name), pd))
	}
	execQ := func(q string) error { _, err := eng.Exec(q); return err }
	if err := batchInsert("names", rows, execQ); err != nil {
		return nil, err
	}

	// Probe table for joins: distinct clusters, English renderings.
	if _, err := eng.Exec(`CREATE TABLE probe (id INT, name UNITEXT)`); err != nil {
		return nil, err
	}
	probeRows := make([]string, 0, cfg.ProbeNames)
	seen := map[int]bool{}
	for _, r := range recs {
		if len(probeRows) >= cfg.ProbeNames {
			break
		}
		if seen[r.Cluster] || r.Name.Lang != types.LangEnglish {
			continue
		}
		seen[r.Cluster] = true
		probeRows = append(probeRows, fmt.Sprintf("(%d, %s)", len(probeRows), uniTextLit(r.Name)))
	}
	if err := batchInsert("probe", probeRows, execQ); err != nil {
		return nil, err
	}

	// Access paths: M-Tree on phonemes (core), B-tree on the pivot distance
	// (outside-the-server MDI).
	for _, q := range []string{
		`CREATE INDEX idx_names_mtree ON names (name) USING MTREE`,
		`CREATE INDEX idx_names_pdist ON names (pdist) USING BTREE`,
		`ANALYZE`,
	} {
		if _, err := eng.Exec(q); err != nil {
			return nil, err
		}
	}

	// Query workload: English cluster bases present in the data.
	for _, r := range recs {
		if len(db.Queries) >= 20 {
			break
		}
		if r.Name.Lang == types.LangEnglish {
			db.Queries = append(db.Queries, r.Name)
		}
	}

	// Outside-the-server plumbing.
	srv := server.New(eng)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	conn, err := client.Dial(addr)
	if err != nil {
		_ = srv.Close()
		return nil, err
	}
	db.Srv = srv
	db.Conn = conn
	return db, nil
}

// Close tears the fixture down.
func (db *NamesDB) Close() {
	if db.Conn != nil {
		_ = db.Conn.Close()
	}
	if db.Srv != nil {
		_ = db.Srv.Close()
	}
	if db.Eng != nil {
		_ = db.Eng.Close()
	}
}

// TaxonomyDB is the Ω fixture: a generated WordNet pinned in the engine and
// also stored as a taxonomy table, with a B-tree on the parent column.
type TaxonomyDB struct {
	Eng  *mural.Engine
	Srv  *server.Server
	Conn *client.Conn
	Net  *wordnet.Net
}

// TaxonomyConfig sizes the fixture.
type TaxonomyConfig struct {
	// Synsets defaults to 20000; pass wordnet.WordNetSynsets (111223) for a
	// paper-scale run.
	Synsets int
	Seed    int64
}

// NewTaxonomyDB builds the fixture.
func NewTaxonomyDB(cfg TaxonomyConfig) (*TaxonomyDB, error) {
	if cfg.Synsets <= 0 {
		cfg.Synsets = 20000
	}
	net := wordnet.Generate(wordnet.Config{Synsets: cfg.Synsets, Seed: cfg.Seed})
	eng, err := mural.Open(mural.Config{WordNet: net})
	if err != nil {
		return nil, err
	}
	db := &TaxonomyDB{Eng: eng, Net: net}
	if _, err := eng.Exec(`CREATE TABLE tax (id INT, parent INT)`); err != nil {
		return nil, err
	}
	rows := make([]string, 0, net.NumSynsets())
	for id := 0; id < net.NumSynsets(); id++ {
		p := net.Parent(wordnet.SynsetID(id))
		if p == wordnet.NoSynset {
			rows = append(rows, fmt.Sprintf("(%d, NULL)", id))
		} else {
			rows = append(rows, fmt.Sprintf("(%d, %d)", id, p))
		}
	}
	execQ := func(q string) error { _, err := eng.Exec(q); return err }
	if err := batchInsert("tax", rows, execQ); err != nil {
		return nil, err
	}
	for _, q := range []string{
		`CREATE INDEX idx_tax_parent ON tax (parent) USING BTREE`,
		`ANALYZE tax`,
	} {
		if _, err := eng.Exec(q); err != nil {
			return nil, err
		}
	}
	srv := server.New(eng)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	conn, err := client.Dial(addr)
	if err != nil {
		_ = srv.Close()
		return nil, err
	}
	// Closure computation dominates; batch row shipping so the outside
	// series measures query round trips per member, as recursive SQL does.
	conn.FetchSize = 64
	db.Srv = srv
	db.Conn = conn
	return db, nil
}

// Close tears the fixture down.
func (db *TaxonomyDB) Close() {
	if db.Conn != nil {
		_ = db.Conn.Close()
	}
	if db.Srv != nil {
		_ = db.Srv.Close()
	}
	if db.Eng != nil {
		_ = db.Eng.Close()
	}
}

// pearson computes the correlation coefficient of two series.
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var num, dx, dy float64
	for i := range xs {
		a, b := xs[i]-mx, ys[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}
