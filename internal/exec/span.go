package exec

import (
	"github.com/mural-db/mural/internal/plan"
)

// Span is one node of an exported query trace: the query root, the
// parse+plan phase, or one executed plan operator, linked to its parent by
// span ID. Span IDs are assigned depth-first within one trace, so an
// exporter can rebuild the tree without engine types.
type Span struct {
	TraceID  uint64
	SpanID   int
	ParentID int
	// Kind is "query", "plan" or "operator".
	Kind string
	// Name is the operator description ("SeqScan names"), the phase name,
	// or the statement text for the query root.
	Name string
	// StartNs is the span's start in Unix nanoseconds. Operator spans
	// inherit the executor phase's start: the collector measures
	// cumulative time per operator, not per-call start offsets.
	StartNs int64
	// DurNs is the span's cumulative wall time.
	DurNs int64
	Rows  int64
	Loops int64
}

// BuildSpans flattens the measured plan tree into operator spans with
// parent edges, depth-first. IDs are assigned from firstID; the tree's
// root operator hangs off parentID. Requires a timed collector; a nil or
// counts-only collector yields nil.
func (es *ExecStats) BuildSpans(root *plan.Node, traceID uint64, startNs int64, firstID, parentID int) []Span {
	if es == nil || !es.timed || root == nil {
		return nil
	}
	var out []Span
	next := firstID
	var walk func(n *plan.Node, parent int)
	walk = func(n *plan.Node, parent int) {
		id := parent
		if st, ok := es.byNode[n]; ok {
			id = next
			next++
			name := n.Op.String()
			if n.Table != "" {
				name += " " + n.Table
			}
			out = append(out, Span{
				TraceID:  traceID,
				SpanID:   id,
				ParentID: parent,
				Kind:     "operator",
				Name:     name,
				StartNs:  startNs,
				DurNs:    int64(st.Elapsed),
				Rows:     st.Rows,
				Loops:    st.Loops,
			})
		}
		for _, c := range n.Children {
			walk(c, id)
		}
	}
	walk(root, parentID)
	return out
}
