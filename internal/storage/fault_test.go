package storage

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// faultDisk wraps a Disk and fails operations on command — the
// failure-injection harness for the buffer pool and heap layers.
type faultDisk struct {
	inner      Disk
	failReads  atomic.Bool
	failWrites atomic.Bool
}

var errInjected = errors.New("injected disk fault")

func (d *faultDisk) ReadPage(id PageID, buf []byte) error {
	if d.failReads.Load() {
		return fmt.Errorf("read page %d: %w", id, errInjected)
	}
	return d.inner.ReadPage(id, buf)
}

func (d *faultDisk) WritePage(id PageID, buf []byte) error {
	if d.failWrites.Load() {
		return fmt.Errorf("write page %d: %w", id, errInjected)
	}
	return d.inner.WritePage(id, buf)
}

func (d *faultDisk) Allocate() (PageID, error) {
	if d.failWrites.Load() {
		return InvalidPageID, fmt.Errorf("allocate: %w", errInjected)
	}
	return d.inner.Allocate()
}

func (d *faultDisk) NumPages() PageID { return d.inner.NumPages() }
func (d *faultDisk) Sync() error      { return d.inner.Sync() }
func (d *faultDisk) Close() error     { return d.inner.Close() }

func TestPoolSurfacesReadFaults(t *testing.T) {
	fd := &faultDisk{inner: NewMemDisk()}
	pool := NewPool(4)
	pool.AttachDisk(1, fd)
	h, err := pool.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	key := h.Key()
	copy(h.Data(), "content")
	h.MarkDirty()
	h.Unpin()
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Evict by detaching, then fail the re-read.
	if err := pool.DetachDisk(1); err != nil {
		t.Fatal(err)
	}
	pool.AttachDisk(1, fd)
	fd.failReads.Store(true)
	if _, err := pool.Pin(key); !errors.Is(err, errInjected) {
		t.Errorf("Pin must surface the injected fault, got %v", err)
	}
	// Recovery after the fault clears.
	fd.failReads.Store(false)
	h2, err := pool.Pin(key)
	if err != nil {
		t.Fatalf("pool did not recover: %v", err)
	}
	if string(h2.Data()[:7]) != "content" {
		t.Error("content lost across fault")
	}
	h2.Unpin()
}

func TestPoolSurfacesWriteFaultsOnEviction(t *testing.T) {
	fd := &faultDisk{inner: NewMemDisk()}
	pool := NewPool(2)
	pool.AttachDisk(1, fd)
	// Fill both frames with dirty pages.
	for i := 0; i < 2; i++ {
		h, err := pool.NewPage(1)
		if err != nil {
			t.Fatal(err)
		}
		h.Data()[0] = byte(i)
		h.MarkDirty()
		h.Unpin()
	}
	fd.failWrites.Store(true)
	// The next allocation needs an eviction, which needs a writeback.
	if _, err := pool.NewPage(1); !errors.Is(err, errInjected) {
		t.Errorf("eviction writeback fault must surface, got %v", err)
	}
	fd.failWrites.Store(false)
	if _, err := pool.NewPage(1); err != nil {
		t.Errorf("pool did not recover after write fault: %v", err)
	}
}

func TestHeapSurfacesFaults(t *testing.T) {
	fd := &faultDisk{inner: NewMemDisk()}
	pool := NewPool(2)
	pool.AttachDisk(1, fd)
	h, err := OpenHeap(pool, 1)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := h.Insert([]byte("row"))
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := pool.DetachDisk(1); err != nil {
		t.Fatal(err)
	}
	pool.AttachDisk(1, fd)
	fd.failReads.Store(true)
	if _, err := h.Get(rid); !errors.Is(err, errInjected) {
		t.Errorf("heap Get must surface the fault, got %v", err)
	}
	it := h.Scan()
	if _, _, _, err := it.Next(); !errors.Is(err, errInjected) {
		t.Errorf("heap scan must surface the fault, got %v", err)
	}
	fd.failReads.Store(false)
	got, err := h.Get(rid)
	if err != nil || string(got) != "row" {
		t.Errorf("heap did not recover: %v %q", err, got)
	}
}
