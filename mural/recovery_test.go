package mural

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/mural-db/mural/internal/storage"
)

// crashHarness wires a shared crash fuse into an engine's data files and
// WAL via Config.DiskWrap/WALWrap, and tracks the inner devices so an
// abandoned ("crashed") engine does not leak file descriptors across the
// hundreds of matrix iterations.
type crashHarness struct {
	state   *storage.CrashState
	mu      sync.Mutex
	closers []func() error
}

func newCrashHarness(limit int) *crashHarness {
	return &crashHarness{state: storage.NewCrashState(limit)}
}

func (h *crashHarness) config(dir string) Config {
	return Config{
		Dir:         dir,
		BufferPages: 128,
		// Small enough that the workload crosses a few auto-checkpoints, so
		// the matrix also crashes inside FlushAll/truncate sequences.
		CheckpointBytes: 512 << 10,
		DiskWrap: func(name string, d storage.Disk) storage.Disk {
			h.mu.Lock()
			h.closers = append(h.closers, d.Close)
			h.mu.Unlock()
			return storage.NewCrashDisk(d, h.state)
		},
		WALWrap: func(f storage.LogFile) storage.LogFile {
			h.mu.Lock()
			h.closers = append(h.closers, f.Close)
			h.mu.Unlock()
			return storage.NewCrashLog(f, h.state)
		},
	}
}

// abandon closes the inner devices without flushing anything — the process
// is gone, the kernel reclaims the descriptors, the disk keeps whatever
// had been written.
func (h *crashHarness) abandon() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, c := range h.closers {
		_ = c()
	}
	h.closers = nil
}

// dbState is the model the crash matrix checks recovered databases
// against: whether table t exists, and its live rows (id → romanized
// name).
type dbState struct {
	exists bool
	rows   map[int64]string
}

func (s dbState) clone() dbState {
	c := dbState{exists: s.exists, rows: make(map[int64]string, len(s.rows))}
	for k, v := range s.rows {
		c.rows[k] = v
	}
	return c
}

func (s dbState) equal(o dbState) bool {
	if s.exists != o.exists || len(s.rows) != len(o.rows) {
		return false
	}
	for k, v := range s.rows {
		if o.rows[k] != v {
			return false
		}
	}
	return true
}

func (s dbState) String() string {
	if !s.exists {
		return "<no table>"
	}
	ids := make([]int64, 0, len(s.rows))
	for id := range s.rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%d=%s ", id, s.rows[id])
	}
	return strings.TrimSpace(b.String())
}

// wlStmt is one workload statement plus its effect on the model.
type wlStmt struct {
	sql   string
	apply func(s *dbState)
}

var crashNames = []string{"Nehru", "Gandhi", "Tagore", "Raman", "Bose", "Naidu", "Patel"}

func insStmt(id int64) wlStmt {
	name := crashNames[int(id)%len(crashNames)]
	return wlStmt{
		sql:   fmt.Sprintf("INSERT INTO t VALUES (%d, unitext('%s', english))", id, name),
		apply: func(s *dbState) { s.rows[id] = name },
	}
}

func ins2Stmt(a, b int64) wlStmt {
	na, nb := crashNames[int(a)%len(crashNames)], crashNames[int(b)%len(crashNames)]
	return wlStmt{
		sql: fmt.Sprintf("INSERT INTO t VALUES (%d, unitext('%s', english)), (%d, unitext('%s', english))",
			a, na, b, nb),
		apply: func(s *dbState) { s.rows[a] = na; s.rows[b] = nb },
	}
}

func delStmt(id int64) wlStmt {
	return wlStmt{
		sql:   fmt.Sprintf("DELETE FROM t WHERE id = %d", id),
		apply: func(s *dbState) { delete(s.rows, id) },
	}
}

// crashWorkload builds the ≥50-statement mixed INSERT/DELETE/CREATE INDEX
// workload the matrix replays: every prefix of its write operations is a
// crash site.
func crashWorkload() []wlStmt {
	w := []wlStmt{{
		sql:   `CREATE TABLE t (id INT, name UNITEXT)`,
		apply: func(s *dbState) { s.exists = true },
	}}
	for id := int64(1); id <= 16; id++ {
		w = append(w, insStmt(id))
	}
	w = append(w, ins2Stmt(17, 18), ins2Stmt(19, 20))
	w = append(w, wlStmt{sql: `CREATE INDEX crash_id ON t (id) USING BTREE`, apply: func(*dbState) {}})
	for id := int64(21); id <= 32; id++ {
		w = append(w, insStmt(id))
	}
	for _, id := range []int64{3, 7, 11, 22} {
		w = append(w, delStmt(id))
	}
	w = append(w, wlStmt{sql: `CREATE INDEX crash_name ON t (name) USING MTREE`, apply: func(*dbState) {}})
	for id := int64(33); id <= 44; id++ {
		w = append(w, insStmt(id))
	}
	w = append(w, wlStmt{
		sql: `DELETE FROM t WHERE id <= 2`,
		apply: func(s *dbState) {
			delete(s.rows, 1)
			delete(s.rows, 2)
		},
	})
	for id := int64(45); id <= 50; id++ {
		w = append(w, insStmt(id))
	}
	return w
}

// readState reopens-free reads table t out of a (recovered) engine.
func readState(e *Engine) (dbState, error) {
	res, err := e.Exec(`SELECT id, name FROM t`)
	if err != nil {
		if strings.Contains(err.Error(), "no such table") {
			return dbState{exists: false, rows: map[int64]string{}}, nil
		}
		return dbState{}, err
	}
	s := dbState{exists: true, rows: make(map[int64]string, len(res.Rows))}
	for _, row := range res.Rows {
		s.rows[row[0].Int()] = row[1].UniText().Text
	}
	return s, nil
}

// checkIndexAgreement compares index-driven plans against pure scans on
// the recovered database: any divergence means an index disagrees with
// its heap.
func checkIndexAgreement(t *testing.T, e *Engine, label string) {
	t.Helper()
	render := func(res *Result) string {
		lines := make([]string, 0, len(res.Rows))
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			lines = append(lines, strings.Join(parts, "|"))
		}
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}
	for _, probe := range []int64{1, 5, 17, 28, 40, 50} {
		q := fmt.Sprintf("SELECT id, name FROM t WHERE id = %d", probe)
		e.MustExec(`SET enable_indexscan = on`)
		on, err := e.Exec(q)
		if err != nil {
			t.Fatalf("%s: index probe id=%d: %v", label, probe, err)
		}
		e.MustExec(`SET enable_indexscan = off`)
		off, err := e.Exec(q)
		if err != nil {
			t.Fatalf("%s: scan probe id=%d: %v", label, probe, err)
		}
		if render(on) != render(off) {
			t.Fatalf("%s: B-tree disagrees with heap for id=%d:\nindex: %s\nscan:  %s",
				label, probe, render(on), render(off))
		}
	}
	e.MustExec(`SET enable_indexscan = on`)
	for _, probe := range []string{"Nehru", "Gandhi"} {
		q := fmt.Sprintf("SELECT id FROM t WHERE name LEXEQUAL '%s' THRESHOLD 1 IN english", probe)
		e.MustExec(`SET enable_mtree = on`)
		on, err := e.Exec(q)
		if err != nil {
			t.Fatalf("%s: mtree probe %q: %v", label, probe, err)
		}
		e.MustExec(`SET enable_mtree = off`)
		off, err := e.Exec(q)
		if err != nil {
			t.Fatalf("%s: mtree scan probe %q: %v", label, probe, err)
		}
		if render(on) != render(off) {
			t.Fatalf("%s: M-tree disagrees with heap for %q:\nindex: %s\nscan:  %s",
				label, probe, render(on), render(off))
		}
	}
	e.MustExec(`SET enable_mtree = on`)
}

// TestCrashMatrix is the central recovery test: it counts the write
// operations W the full workload performs, then for every prefix N in
// [0, W] runs the workload against a fresh database whose devices die
// after N writes (every third crash site tears the triggering write),
// reopens the database cleanly, and checks the recovered state.
//
// The acceptable states are exact: every statement acknowledged before the
// crash must be fully present, nothing later may leave a trace. The one
// ambiguity a write-ahead scheme genuinely has is the statement that was
// in flight at the crash — its commit record may or may not have become
// durable before the failing operation — so the first *failed* statement
// is accepted either fully applied or fully absent. Never partially.
func TestCrashMatrix(t *testing.T) {
	workload := crashWorkload()
	if len(workload) < 50 {
		t.Fatalf("workload has %d statements, want >= 50", len(workload))
	}

	// Pass 1: count total write operations with a fuse that never trips.
	counter := newCrashHarness(-1)
	dir := t.TempDir()
	e, err := Open(counter.config(dir))
	if err != nil {
		t.Fatalf("counting pass: open: %v", err)
	}
	full := dbState{rows: map[int64]string{}}
	for i, s := range workload {
		if _, err := e.Exec(s.sql); err != nil {
			t.Fatalf("counting pass: statement %d (%s): %v", i, s.sql, err)
		}
		s.apply(&full)
	}
	totalWrites := counter.state.Writes()
	if err := e.Close(); err != nil {
		t.Fatalf("counting pass: close: %v", err)
	}
	counter.abandon()
	verifySite(t, "full-run", dir, []dbState{full})

	if totalWrites < len(workload) {
		t.Fatalf("suspicious write count %d for %d statements", totalWrites, len(workload))
	}
	t.Logf("workload: %d statements, %d write operations", len(workload), totalWrites)

	stride := 1
	if testing.Short() {
		stride = 17
	}

	// Pass 2: crash after every write prefix.
	for n := 0; n <= totalWrites; n += stride {
		h := newCrashHarness(n)
		if n%3 == 2 {
			h.state.SetTear(true)
		}
		dir := t.TempDir()
		label := fmt.Sprintf("crash@%d", n)

		model := dbState{rows: map[int64]string{}}
		acceptable := []dbState{}
		e, err := Open(h.config(dir))
		if err == nil {
			failed := -1
			for i, s := range workload {
				if _, err := e.Exec(s.sql); err != nil {
					failed = i
					break
				}
				s.apply(&model)
			}
			acceptable = append(acceptable, model)
			if failed >= 0 {
				// Boundary ambiguity: the failing statement may have become
				// durable before the crash hit a post-commit step.
				b := model.clone()
				workload[failed].apply(&b)
				acceptable = append(acceptable, b)
			}
		} else {
			// Crashed inside Open itself: nothing may survive.
			acceptable = append(acceptable, model)
		}
		h.abandon()
		verifySite(t, label, dir, acceptable)
	}
}

// verifySite reopens dir without fault injection and checks the recovered
// database matches one of the acceptable states, with indexes agreeing
// with the heap.
func verifySite(t *testing.T, label, dir string, acceptable []dbState) {
	t.Helper()
	e, err := Open(Config{Dir: dir, BufferPages: 128})
	if err != nil {
		t.Fatalf("%s: recovery open failed: %v", label, err)
	}
	defer e.Close()
	got, err := readState(e)
	if err != nil {
		t.Fatalf("%s: reading recovered state: %v", label, err)
	}
	ok := false
	for _, want := range acceptable {
		if got.equal(want) {
			ok = true
			break
		}
	}
	if !ok {
		msg := fmt.Sprintf("%s: recovered state does not match any acceptable state\ngot:  %s", label, got)
		for i, want := range acceptable {
			msg += fmt.Sprintf("\nwant[%d]: %s", i, want)
		}
		t.Fatal(msg)
	}
	if got.exists {
		checkIndexAgreement(t, e, label)
	}
}

// tornTailSetup builds a database whose 30 committed inserts live only in
// the WAL (the engine is abandoned without Close, so no page ever reached
// the data files), and returns the WAL path.
func tornTailSetup(t *testing.T) (dir, walPath string) {
	t.Helper()
	dir = t.TempDir()
	h := newCrashHarness(-1) // fuse never trips; harness only tracks FDs
	cfg := h.config(dir)
	cfg.CheckpointBytes = 64 << 20 // keep everything in the WAL
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.MustExec(`CREATE TABLE t (id INT, name UNITEXT)`)
	for i := 0; i < 30; i++ {
		e.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, unitext('%s', english))",
			i, crashNames[i%len(crashNames)]))
	}
	h.abandon() // crash: no Close, no checkpoint
	return dir, filepath.Join(dir, walFileName)
}

func tornTailIDs(t *testing.T, dir string) (ids []int64, rec RecoveryStats) {
	t.Helper()
	e, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("recovery open failed: %v", err)
	}
	defer e.Close()
	res, err := e.Exec(`SELECT id FROM t ORDER BY id`)
	if err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	for _, row := range res.Rows {
		ids = append(ids, row[0].Int())
	}
	return ids, e.LastRecovery()
}

// TestTornTailTruncated chops bytes off the end of the WAL — the classic
// crash-mid-append — and checks recovery lands exactly on the last intact
// commit.
func TestTornTailTruncated(t *testing.T) {
	dir, wal := tornTailSetup(t)
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, fi.Size()-37); err != nil {
		t.Fatal(err)
	}
	ids, rec := tornTailIDs(t, dir)
	if !rec.TornTail {
		t.Error("recovery did not report the torn tail")
	}
	// The final insert's batch (page image + commit, far more than 37
	// bytes) lost its tail: ids 0..28 survive, 29 is gone.
	if len(ids) != 29 {
		t.Fatalf("recovered %d rows, want 29 (ids: %v)", len(ids), ids)
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("recovered ids not the committed prefix: %v", ids)
		}
	}
}

// TestTornTailBitFlip corrupts a byte inside the final WAL record; the CRC
// must reject it and recovery must stop at the last intact commit without
// panicking.
func TestTornTailBitFlip(t *testing.T) {
	dir, wal := tornTailSetup(t)
	buf, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-10] ^= 0x40 // inside the final commit frame
	if err := os.WriteFile(wal, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	ids, rec := tornTailIDs(t, dir)
	if !rec.TornTail {
		t.Error("recovery did not report the corrupt tail")
	}
	if len(ids) != 29 {
		t.Fatalf("recovered %d rows, want 29 (ids: %v)", len(ids), ids)
	}
}

// TestTornMiddleBitFlip flips a byte deep inside the log. Redo must stop
// at the corrupt frame: the recovered rows are exactly some committed
// prefix of the workload, never a gappy subset.
func TestTornMiddleBitFlip(t *testing.T) {
	dir, wal := tornTailSetup(t)
	buf, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x01
	if err := os.WriteFile(wal, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	ids, rec := tornTailIDs(t, dir)
	if !rec.TornTail {
		t.Error("recovery did not report the corruption")
	}
	if len(ids) >= 30 {
		t.Fatalf("corrupt log recovered %d rows, want a strict prefix of 30", len(ids))
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("recovered ids not a committed prefix: %v", ids)
		}
	}
}

// TestRecoveryReplaysAbandonedWAL is the plain redo path: commits that
// never reached the data files come back from the log.
func TestRecoveryReplaysAbandonedWAL(t *testing.T) {
	dir, _ := tornTailSetup(t)
	ids, rec := tornTailIDs(t, dir)
	if len(ids) != 30 {
		t.Fatalf("recovered %d rows, want all 30", len(ids))
	}
	if rec.BatchesReplayed == 0 || rec.PagesApplied == 0 {
		t.Errorf("recovery stats show no replay: %+v", rec)
	}
	if rec.TornTail {
		t.Errorf("clean log reported torn: %+v", rec)
	}
	// A second reopen after the clean close must be a no-op recovery.
	e, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if rec := e.LastRecovery(); rec.BatchesReplayed != 0 {
		t.Errorf("checkpointed database still replayed %d batches", rec.BatchesReplayed)
	}
	res := e.MustExec(`SELECT count(*) FROM t`)
	if res.Rows[0][0].Int() != 30 {
		t.Errorf("rows lost across clean reopen: %v", res.Rows)
	}
}
