package exec

import (
	"fmt"
	"testing"

	"github.com/mural-db/mural/internal/phonetic"
	"github.com/mural-db/mural/internal/plan"
	"github.com/mural-db/mural/internal/sql"
	"github.com/mural-db/mural/internal/storage"
	"github.com/mural-db/mural/internal/types"
	"github.com/mural-db/mural/internal/wordnet"
)

// mockEnv backs the executor with in-memory tables; index probes answer by
// brute force so operator logic can be tested without the storage stack.
type mockEnv struct {
	tables  map[string][]types.Tuple
	phon    *phonetic.Registry
	matcher *wordnet.Matcher
	// mtreeCol maps index name -> (table, column position).
	mtree map[string]struct {
		table string
		col   int
	}
}

func newMockEnv() *mockEnv {
	return &mockEnv{
		tables: map[string][]types.Tuple{},
		phon:   phonetic.DefaultRegistry(),
		mtree: map[string]struct {
			table string
			col   int
		}{},
	}
}

func (m *mockEnv) ScanTable(table string) (TupleIter, error) {
	rows, ok := m.tables[table]
	if !ok {
		return nil, fmt.Errorf("mock: no table %q", table)
	}
	return &sliceIter{rows: rows}, nil
}

// mockPageRows is the mock heap's page capacity: small, so parallel-scan
// tests exercise multi-morsel partitioning with few rows.
const mockPageRows = 2

func (m *mockEnv) TablePages(table string) (int64, error) {
	rows, ok := m.tables[table]
	if !ok {
		return 0, fmt.Errorf("mock: no table %q", table)
	}
	return int64((len(rows) + mockPageRows - 1) / mockPageRows), nil
}

func (m *mockEnv) ScanTablePages(table string, lo, hi int64) (TupleIter, error) {
	rows, ok := m.tables[table]
	if !ok {
		return nil, fmt.Errorf("mock: no table %q", table)
	}
	start := int(lo) * mockPageRows
	end := int(hi) * mockPageRows
	if start > len(rows) {
		start = len(rows)
	}
	if end > len(rows) {
		end = len(rows)
	}
	return &sliceIter{rows: rows[start:end]}, nil
}

func (m *mockEnv) FetchRIDs(table string, rids []storage.RID) ([]types.Tuple, error) {
	rows := m.tables[table]
	out := make([]types.Tuple, 0, len(rids))
	for _, rid := range rids {
		if int(rid.Slot) >= len(rows) {
			return nil, fmt.Errorf("mock: bad rid %v", rid)
		}
		out = append(out, rows[rid.Slot])
	}
	return out, nil
}

func (m *mockEnv) IndexSearch(string, []byte, []byte) ([]storage.RID, int, error) {
	return nil, 0, fmt.Errorf("mock: no btree indexes")
}

func (m *mockEnv) MTreeSearch(index string, phoneme string, threshold int) ([]storage.RID, int, error) {
	spec, ok := m.mtree[index]
	if !ok {
		return nil, 0, fmt.Errorf("mock: no mtree %q", index)
	}
	var rids []storage.RID
	for i, row := range m.tables[spec.table] {
		v := row[spec.col]
		if v.IsNull() {
			continue
		}
		ph := m.phon.ToPhoneme(v.UniText())
		if phonetic.WithinDistance(ph, phoneme, threshold) {
			rids = append(rids, storage.RID{Slot: uint16(i)})
		}
	}
	return rids, 1, nil
}

func (m *mockEnv) MDISearch(string, string, int) ([]storage.RID, int, int, error) {
	return nil, 0, 0, fmt.Errorf("mock: no mdi indexes")
}

func (m *mockEnv) QGramSearch(string, string, int) ([]storage.RID, int, error) {
	return nil, 0, fmt.Errorf("mock: no qgram indexes")
}

func (m *mockEnv) CustomOperator(string) func(a, b types.Value) (bool, error) { return nil }

func (m *mockEnv) Phonetic() *phonetic.Registry { return m.phon }
func (m *mockEnv) Semantic() *wordnet.Matcher   { return m.matcher }

func u(text string, lang types.LangID) types.Value {
	return types.NewUniText(phonetic.DefaultRegistry().Materialize(types.Compose(text, lang)))
}

func scanNode(table string, cols []plan.ColInfo) *plan.Node {
	return &plan.Node{Op: plan.OpSeqScan, Table: table, Cols: cols, EstRows: 1}
}

func runAll(t *testing.T, env Env, node *plan.Node) []types.Tuple {
	t.Helper()
	cur, err := Run(env, node)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestFilterAndProject(t *testing.T) {
	env := newMockEnv()
	env.tables["t"] = []types.Tuple{
		{types.NewInt(1), types.NewText("a")},
		{types.NewInt(2), types.NewText("b")},
		{types.NewInt(3), types.NewText("c")},
	}
	cols := []plan.ColInfo{{Rel: "t", Name: "id", Kind: types.KindInt}, {Rel: "t", Name: "s", Kind: types.KindText}}
	node := &plan.Node{
		Op: plan.OpProject,
		Children: []*plan.Node{{
			Op:       plan.OpFilter,
			Children: []*plan.Node{scanNode("t", cols)},
			Cols:     cols,
			Cond: &plan.Cmp{Op: sql.OpGt,
				L: &plan.ColIdx{Idx: 0, Kind: types.KindInt},
				R: &plan.Const{Val: types.NewInt(1)}},
		}},
		Cols:     []plan.ColInfo{{Name: "s", Kind: types.KindText}},
		ColNames: []string{"s"},
		Projs:    []plan.Expr{&plan.ColIdx{Idx: 1, Kind: types.KindText}},
	}
	rows := runAll(t, env, node)
	if len(rows) != 2 || rows[0][0].Text() != "b" || rows[1][0].Text() != "c" {
		t.Errorf("rows = %v", rows)
	}
}

func TestNLJoinCrossProduct(t *testing.T) {
	env := newMockEnv()
	env.tables["a"] = []types.Tuple{{types.NewInt(1)}, {types.NewInt(2)}}
	env.tables["b"] = []types.Tuple{{types.NewText("x")}, {types.NewText("y")}, {types.NewText("z")}}
	aCols := []plan.ColInfo{{Rel: "a", Name: "n", Kind: types.KindInt}}
	bCols := []plan.ColInfo{{Rel: "b", Name: "s", Kind: types.KindText}}
	node := &plan.Node{
		Op:       plan.OpNLJoin,
		Children: []*plan.Node{scanNode("a", aCols), scanNode("b", bCols)},
		Cols:     append(append([]plan.ColInfo{}, aCols...), bCols...),
	}
	rows := runAll(t, env, node)
	if len(rows) != 6 {
		t.Errorf("cross product rows = %d", len(rows))
	}
}

func TestHashJoinMatchesAndSkipsNulls(t *testing.T) {
	env := newMockEnv()
	env.tables["l"] = []types.Tuple{
		{types.NewInt(1), types.NewText("l1")},
		{types.NewInt(2), types.NewText("l2")},
		{types.Null(), types.NewText("l3")},
	}
	env.tables["r"] = []types.Tuple{
		{types.NewInt(2), types.NewText("r2")},
		{types.NewInt(2), types.NewText("r2b")},
		{types.Null(), types.NewText("r3")},
	}
	lCols := []plan.ColInfo{{Rel: "l", Name: "k", Kind: types.KindInt}, {Rel: "l", Name: "v", Kind: types.KindText}}
	rCols := []plan.ColInfo{{Rel: "r", Name: "k", Kind: types.KindInt}, {Rel: "r", Name: "v", Kind: types.KindText}}
	node := &plan.Node{
		Op:        plan.OpHashJoin,
		Children:  []*plan.Node{scanNode("l", lCols), scanNode("r", rCols)},
		Cols:      append(append([]plan.ColInfo{}, lCols...), rCols...),
		HashLeft:  0,
		HashRight: 2,
	}
	rows := runAll(t, env, node)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r[0].Int() != 2 {
			t.Errorf("bad join row %v", r)
		}
	}
}

func TestPsiJoinOperator(t *testing.T) {
	env := newMockEnv()
	env.tables["a"] = []types.Tuple{{u("nehru", types.LangEnglish)}, {u("bose", types.LangEnglish)}}
	env.tables["b"] = []types.Tuple{{u("நேரு", types.LangTamil)}, {u("patel", types.LangEnglish)}}
	aCols := []plan.ColInfo{{Rel: "a", Name: "n", Kind: types.KindUniText}}
	bCols := []plan.ColInfo{{Rel: "b", Name: "n", Kind: types.KindUniText}}
	node := &plan.Node{
		Op:           plan.OpPsiJoin,
		Children:     []*plan.Node{scanNode("a", aCols), scanNode("b", bCols)},
		Cols:         append(append([]plan.ColInfo{}, aCols...), bCols...),
		PsiThreshold: 2,
		PsiLeftCol:   0,
		PsiRightCol:  1,
	}
	rows := runAll(t, env, node)
	if len(rows) != 1 {
		t.Fatalf("Ψ join rows = %v", rows)
	}
	if rows[0][0].UniText().Text != "nehru" {
		t.Errorf("row = %v", rows[0])
	}
}

func TestPsiIndexJoinOperator(t *testing.T) {
	env := newMockEnv()
	env.tables["outer"] = []types.Tuple{{u("nehru", types.LangEnglish)}, {u("zzz", types.LangEnglish)}}
	env.tables["inner"] = []types.Tuple{{u("neru", types.LangEnglish)}, {u("patel", types.LangEnglish)}}
	env.mtree["ix"] = struct {
		table string
		col   int
	}{"inner", 0}
	oCols := []plan.ColInfo{{Rel: "o", Name: "n", Kind: types.KindUniText}}
	iCols := []plan.ColInfo{{Rel: "i", Name: "n", Kind: types.KindUniText}}
	node := &plan.Node{
		Op:           plan.OpPsiIndexJoin,
		Children:     []*plan.Node{scanNode("outer", oCols), scanNode("inner", iCols)},
		Cols:         append(append([]plan.ColInfo{}, oCols...), iCols...),
		PsiThreshold: 1,
		PsiLeftCol:   0,
		PsiRightCol:  1,
		Index:        &plan.IndexCond{Index: "ix", Threshold: 1},
	}
	rows := runAll(t, env, node)
	if len(rows) != 1 || rows[0][1].UniText().Text != "neru" {
		t.Errorf("index Ψ join rows = %v", rows)
	}
}

func TestOmegaJoinOperator(t *testing.T) {
	net := wordnet.Generate(wordnet.Config{Synsets: 2000, Seed: 9})
	env := newMockEnv()
	env.matcher = wordnet.NewMatcher(net)
	env.tables["cat"] = []types.Tuple{
		{u("historiography", types.LangEnglish)},
		{u("physics", types.LangEnglish)},
	}
	env.tables["concept"] = []types.Tuple{{u("history", types.LangEnglish)}}
	lCols := []plan.ColInfo{{Rel: "c", Name: "v", Kind: types.KindUniText}}
	rCols := []plan.ColInfo{{Rel: "k", Name: "v", Kind: types.KindUniText}}
	node := &plan.Node{
		Op:            plan.OpOmegaJoin,
		Children:      []*plan.Node{scanNode("cat", lCols), scanNode("concept", rCols)},
		Cols:          append(append([]plan.ColInfo{}, lCols...), rCols...),
		OmegaLeftCol:  0,
		OmegaRightCol: 1,
	}
	rows := runAll(t, env, node)
	if len(rows) != 1 || rows[0][0].UniText().Text != "historiography" {
		t.Errorf("Ω join rows = %v", rows)
	}
}

func TestAggregateOperator(t *testing.T) {
	env := newMockEnv()
	env.tables["t"] = []types.Tuple{
		{types.NewText("a"), types.NewInt(1)},
		{types.NewText("a"), types.NewInt(2)},
		{types.NewText("b"), types.NewInt(10)},
		{types.NewText("b"), types.Null()},
	}
	cols := []plan.ColInfo{{Rel: "t", Name: "g", Kind: types.KindText}, {Rel: "t", Name: "v", Kind: types.KindInt}}
	node := &plan.Node{
		Op:       plan.OpAggregate,
		Children: []*plan.Node{scanNode("t", cols)},
		Cols: []plan.ColInfo{
			{Name: "g", Kind: types.KindText},
			{Name: "count", Kind: types.KindInt},
			{Name: "sum", Kind: types.KindFloat},
			{Name: "min", Kind: types.KindInt},
		},
		ColNames: []string{"g", "count", "sum", "min"},
		GroupBy:  []plan.Expr{&plan.ColIdx{Idx: 0, Kind: types.KindText}},
		Aggs: []plan.AggSpec{
			{Kind: sql.FuncCount},
			{Kind: sql.FuncSum, Arg: &plan.ColIdx{Idx: 1, Kind: types.KindInt}},
			{Kind: sql.FuncMin, Arg: &plan.ColIdx{Idx: 1, Kind: types.KindInt}},
		},
		Projs: []plan.Expr{&plan.ColIdx{Idx: 0, Kind: types.KindText}, nil, nil, nil},
	}
	rows := runAll(t, env, node)
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	byKey := map[string]types.Tuple{}
	for _, r := range rows {
		byKey[r[0].Text()] = r
	}
	a, b := byKey["a"], byKey["b"]
	if a[1].Int() != 2 || a[2].Float() != 3 || a[3].Int() != 1 {
		t.Errorf("group a = %v", a)
	}
	// COUNT(*) counts all rows; SUM skips the NULL.
	if b[1].Int() != 2 || b[2].Float() != 10 || b[3].Int() != 10 {
		t.Errorf("group b = %v", b)
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	env := newMockEnv()
	env.tables["t"] = nil
	cols := []plan.ColInfo{{Rel: "t", Name: "v", Kind: types.KindInt}}
	node := &plan.Node{
		Op:       plan.OpAggregate,
		Children: []*plan.Node{scanNode("t", cols)},
		Cols:     []plan.ColInfo{{Name: "count", Kind: types.KindInt}, {Name: "sum", Kind: types.KindFloat}},
		ColNames: []string{"count", "sum"},
		Aggs: []plan.AggSpec{
			{Kind: sql.FuncCount},
			{Kind: sql.FuncSum, Arg: &plan.ColIdx{Idx: 0, Kind: types.KindInt}},
		},
		Projs: []plan.Expr{nil, nil},
	}
	rows := runAll(t, env, node)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", rows[0])
	}
}

func TestSortLimitDistinct(t *testing.T) {
	env := newMockEnv()
	env.tables["t"] = []types.Tuple{
		{types.NewInt(3)}, {types.NewInt(1)}, {types.NewInt(2)}, {types.NewInt(1)},
	}
	cols := []plan.ColInfo{{Rel: "t", Name: "v", Kind: types.KindInt}}
	node := &plan.Node{
		Op: plan.OpLimit, LimitN: 2,
		Children: []*plan.Node{{
			Op: plan.OpSort,
			Children: []*plan.Node{{
				Op:       plan.OpDistinct,
				Children: []*plan.Node{scanNode("t", cols)},
				Cols:     cols,
			}},
			Cols:     cols,
			SortKeys: []plan.Expr{&plan.ColIdx{Idx: 0, Kind: types.KindInt}},
			SortDesc: []bool{true},
		}},
		Cols: cols,
	}
	rows := runAll(t, env, node)
	if len(rows) != 2 || rows[0][0].Int() != 3 || rows[1][0].Int() != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestEvaluatorScalarFunctions(t *testing.T) {
	env := newMockEnv()
	ev := NewEvaluator(env)
	uni := &plan.Call{Kind: sql.FuncUniText, Args: []plan.Expr{
		&plan.Const{Val: types.NewText("Nehru")},
		&plan.Const{Val: types.NewText("english")},
	}}
	v, err := ev.Eval(uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	ut := v.UniText()
	if ut.Lang != types.LangEnglish || ut.Phoneme == "" {
		t.Errorf("unitext() = %+v", ut)
	}
	for _, tc := range []struct {
		kind sql.FuncKind
		want string
	}{
		{sql.FuncText, "Nehru"},
		{sql.FuncLang, "english"},
		{sql.FuncPhoneme, ut.Phoneme},
	} {
		got, err := ev.Eval(&plan.Call{Kind: tc.kind, Args: []plan.Expr{&plan.Const{Val: v}}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Text() != tc.want {
			t.Errorf("%s = %q, want %q", tc.kind, got.Text(), tc.want)
		}
	}
	// Errors.
	if _, err := ev.Eval(&plan.Call{Kind: sql.FuncLang, Args: []plan.Expr{&plan.Const{Val: types.NewInt(1)}}}, nil); err == nil {
		t.Error("lang(int) must fail")
	}
	if _, err := ev.Eval(&plan.Call{Kind: sql.FuncUniText, Args: []plan.Expr{
		&plan.Const{Val: types.NewText("x")}, &plan.Const{Val: types.NewText("klingon")}}}, nil); err == nil {
		t.Error("unknown language must fail")
	}
}

func TestEvaluatorNullSemantics(t *testing.T) {
	env := newMockEnv()
	ev := NewEvaluator(env)
	cmp := &plan.Cmp{Op: sql.OpEq,
		L: &plan.Const{Val: types.Null()},
		R: &plan.Const{Val: types.NewInt(1)}}
	got, err := ev.EvalBool(cmp, nil)
	if err != nil || got {
		t.Errorf("NULL = 1 evaluated %v, %v", got, err)
	}
	psi := &plan.Psi{L: &plan.Const{Val: types.Null()}, R: &plan.Const{Val: types.NewText("x")}, Threshold: 3}
	if got, err := ev.EvalBool(psi, nil); err != nil || got {
		t.Errorf("Ψ(NULL, x) = %v, %v", got, err)
	}
}

func TestEvaluatorPsiLangFilter(t *testing.T) {
	env := newMockEnv()
	ev := NewEvaluator(env)
	tamil := u("நேரு", types.LangTamil)
	psi := &plan.Psi{
		L:         &plan.Const{Val: tamil},
		R:         &plan.Const{Val: types.NewText("Nehru")},
		Threshold: 2,
		Langs:     []types.LangID{types.LangEnglish}, // Tamil rows excluded
	}
	got, err := ev.EvalBool(psi, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("IN english must exclude a Tamil value")
	}
	psi.Langs = []types.LangID{types.LangEnglish, types.LangTamil}
	if got, _ := ev.EvalBool(psi, nil); !got {
		t.Error("IN english, tamil must admit the Tamil value")
	}
}

func TestOmegaWithoutMatcherErrors(t *testing.T) {
	env := newMockEnv() // matcher nil
	ev := NewEvaluator(env)
	om := &plan.Omega{L: &plan.Const{Val: types.NewText("a")}, R: &plan.Const{Val: types.NewText("b")}}
	if _, err := ev.Eval(om, nil); err == nil {
		t.Error("Ω without taxonomy must error")
	}
}

func TestRunStatsCount(t *testing.T) {
	env := newMockEnv()
	env.tables["t"] = []types.Tuple{{u("a", types.LangEnglish)}, {u("b", types.LangEnglish)}}
	cols := []plan.ColInfo{{Rel: "t", Name: "n", Kind: types.KindUniText}}
	node := &plan.Node{
		Op:       plan.OpFilter,
		Children: []*plan.Node{scanNode("t", cols)},
		Cols:     cols,
		Cond: &plan.Psi{L: &plan.ColIdx{Idx: 0}, R: &plan.Const{Val: types.NewText("a")},
			Threshold: 0},
	}
	cur, err := Run(env, node)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if cur.Stats.PsiEvaluations != 2 {
		t.Errorf("PsiEvaluations = %d", cur.Stats.PsiEvaluations)
	}
	if cur.Stats.RowsOut != 1 {
		t.Errorf("RowsOut = %d", cur.Stats.RowsOut)
	}
}
