// Phonejoin: the paper's Example 5 — "find the books whose author's name
// sounds like that of a publisher's name" — demonstrating the optimizer
// choosing between the two execution plans of Figure 7 and the measured
// consequence of forcing the wrong one.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/mural-db/mural/internal/dataset"
	"github.com/mural-db/mural/mural"
)

func main() {
	db, err := mural.Open(mural.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	cat := dataset.GenerateCatalog(dataset.CatalogConfig{
		Authors: 500, Publishers: 120, Books: 6000, Seed: 5,
	})
	db.MustExec(`CREATE TABLE author (authorid INT, aname UNITEXT)`)
	db.MustExec(`CREATE TABLE publisher (publisherid INT, pname UNITEXT)`)
	db.MustExec(`CREATE TABLE book (bookid INT, authorid INT, publisherid INT)`)

	load := func(table string, rows []string) {
		for i := 0; i < len(rows); i += 500 {
			j := i + 500
			if j > len(rows) {
				j = len(rows)
			}
			db.MustExec(`INSERT INTO ` + table + ` VALUES ` + strings.Join(rows[i:j], ","))
		}
	}
	var rows []string
	for _, a := range cat.Authors {
		rows = append(rows, fmt.Sprintf("(%d, unitext('%s', %s))", a.ID,
			strings.ReplaceAll(a.Name.Text, "'", "''"), a.Name.Lang))
	}
	load("author", rows)
	rows = rows[:0]
	for _, p := range cat.Publishers {
		rows = append(rows, fmt.Sprintf("(%d, unitext('%s', %s))", p.ID,
			strings.ReplaceAll(p.Name.Text, "'", "''"), p.Name.Lang))
	}
	load("publisher", rows)
	rows = rows[:0]
	for _, b := range cat.Books {
		rows = append(rows, fmt.Sprintf("(%d, %d, %d)", b.ID, b.AuthorID, b.PublisherID))
	}
	load("book", rows)
	db.MustExec(`ANALYZE`)

	query := `SELECT count(*) FROM book b
		JOIN author a ON b.authorid = a.authorid, publisher p
		WHERE a.aname LEXEQUAL p.pname THRESHOLD 3`

	// Let the optimizer choose (the paper's Plan 1: Ψ join of the small
	// Author × Publisher product first, books joined last).
	res, err := db.Exec(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer's choice: %v matching books, cost=%.0f, %s\n",
		res.Rows[0][0], res.PlanCost, res.Elapsed.Round(100000))
	fmt.Print(res.Plan)

	// Force Figure 7's Plan 2: drag every book row through the Ψ predicate.
	db.MustExec(`SET force_join_order = b, a, p`)
	res2, err := db.Exec(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nforced plan 2: same answer (%v), cost=%.0f, %s\n",
		res2.Rows[0][0], res2.PlanCost, res2.Elapsed.Round(100000))
	fmt.Print(res2.Plan)

	fmt.Printf("\nplan2/plan1 runtime ratio: %.1fx (paper: ~28x at its scale)\n",
		res2.Elapsed.Seconds()/res.Elapsed.Seconds())
}
