// Golden package for the pinbalance analyzer. The local Pool/Handle pair
// mirrors the storage package's shape; the analyzer matches by name.
package pinbalance

import "errors"

type Pool struct{}

type Handle struct{ data []byte }

func (p *Pool) Pin(key int) (*Handle, error)      { return &Handle{}, nil }
func (p *Pool) NewPage(file int) (*Handle, error) { return &Handle{}, nil }

func (h *Handle) Unpin()       {}
func (h *Handle) Data() []byte { return h.data }
func (h *Handle) MarkDirty()   {}

func borrow(h *Handle) {}

// ---- negative cases: these must not be flagged ----

func deferredUnpin(p *Pool) error {
	h, err := p.Pin(1)
	if err != nil {
		return err
	}
	defer h.Unpin()
	borrow(h)
	return nil
}

func manualUnpinAllPaths(p *Pool) error {
	h, err := p.Pin(2)
	if err != nil {
		return err
	}
	if len(h.Data()) == 0 {
		h.Unpin()
		return errors.New("empty")
	}
	h.Unpin()
	return nil
}

func returnedHandle(p *Pool) (*Handle, error) {
	h, err := p.NewPage(3)
	if err != nil {
		return nil, err
	}
	return h, nil
}

func annotatedEscape(p *Pool) *Handle {
	h, _ := p.Pin(4) //lint:pin-escapes caller unpins
	return fixup(h)
}

func fixup(h *Handle) *Handle { return h }

func closureUnpin(p *Pool) error {
	h, err := p.Pin(5)
	if err != nil {
		return err
	}
	defer func() { h.Unpin() }()
	h.MarkDirty()
	return nil
}

type frameRef struct{ h *Handle }

func compositeEscape(p *Pool) (frameRef, error) {
	h, err := p.Pin(6)
	if err != nil {
		return frameRef{}, err
	}
	return frameRef{h: h}, nil
}

// ---- positive cases: each acquisition line carries a want ----

func leakOnEarlyReturn(p *Pool) error {
	h, err := p.Pin(10) // want `pinned page handle acquired by Pin is not released`
	if err != nil {
		return err
	}
	if len(h.Data()) == 0 {
		return errors.New("empty") // leaks here
	}
	h.Unpin()
	return nil
}

func leakAtScopeEnd(p *Pool) {
	h, _ := p.NewPage(11) // want `pinned page handle acquired by NewPage is not released`
	h.MarkDirty()
}

func discardedResult(p *Pool) {
	_, _ = p.Pin(12) // want `result of Pin \(a pinned page handle\) is discarded`
}

func useAfterUnpin(p *Pool) {
	h, _ := p.Pin(13)
	h.Unpin()
	h.MarkDirty() // want `use of pinned page handle after its release`
}

func leakInBranch(p *Pool, cond bool) error {
	h, err := p.Pin(14) // want `pinned page handle acquired by Pin is not released`
	if err != nil {
		return err
	}
	if cond {
		h.Unpin()
	}
	return nil // leaks when !cond
}
