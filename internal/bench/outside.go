package bench

import (
	"github.com/mural-db/mural/internal/client"
	"github.com/mural-db/mural/internal/types"
)

// Thin adapters binding the client UDF library to the NamesDB fixture
// schema.

func clientPsiScan(db *NamesDB, query string, k int) (int64, client.PsiStats, error) {
	q := types.Compose(query, types.LangEnglish)
	rows, st, err := client.PsiScan(db.Conn, "names", "name", q, k, nil, db.Reg)
	return int64(len(rows)), st, err
}

func clientPsiScanMDI(db *NamesDB, query string, k int) (int64, client.PsiStats, error) {
	q := types.Compose(query, types.LangEnglish)
	rows, st, err := client.PsiScanMDI(db.Conn, "names", "name", "pdist", db.Pivot, q, k, nil, db.Reg)
	return int64(len(rows)), st, err
}

func clientPsiJoin(db *NamesDB, k int) (int64, error) {
	// Nested cursor loop: the inner table is re-shipped per outer row, the
	// way a PL/SQL join over a UDF predicate executes.
	matches, _, err := client.PsiJoinNested(db.Conn, "probe", "name", "names", "name", k, nil, db.Reg)
	return int64(matches), err
}

func clientPsiJoinMDI(db *NamesDB, k int) (int64, error) {
	matches, _, err := client.PsiJoinMDI(db.Conn, "probe", "name", "names", "name", "pdist", db.Pivot, k, nil, db.Reg)
	return int64(matches), err
}
