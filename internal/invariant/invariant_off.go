//go:build !muralinvariants

// Package invariant provides engine-internal runtime assertions that cost
// nothing in production builds. Assert and Assertf compile to no-ops unless
// the muralinvariants build tag is set, in which case a violated invariant
// panics with its message. Guard any assertion whose condition is expensive
// to evaluate (checksums, sortedness sweeps) behind `if invariant.Enabled`.
//
// Run the checked build with:
//
//	go test -tags muralinvariants ./...
package invariant

// Enabled reports whether assertions are compiled in.
const Enabled = false

// Assert panics with msg when cond is false, in checked builds only.
func Assert(cond bool, msg string) {}

// Assertf panics with the formatted message when cond is false, in checked
// builds only.
func Assertf(cond bool, format string, args ...any) {}
