package wire

import (
	"bytes"
	"testing"
)

func TestFragmentPayloadRoundTrip(t *testing.T) {
	for _, deadline := range []uint64{0, 1, 250, 1 << 40} {
		frag := []byte(`{"op":"seqscan","table":"t"}`)
		buf := EncodeFragmentPayload(deadline, frag)
		d, got, err := DecodeFragmentPayload(buf)
		if err != nil {
			t.Fatalf("deadline %d: %v", deadline, err)
		}
		if d != deadline {
			t.Errorf("deadline = %d, want %d", d, deadline)
		}
		if !bytes.Equal(got, frag) {
			t.Errorf("fragment bytes drifted: %q", got)
		}
	}
}

func TestFragmentPayloadEmptyFragment(t *testing.T) {
	buf := EncodeFragmentPayload(42, nil)
	d, frag, err := DecodeFragmentPayload(buf)
	if err != nil || d != 42 || len(frag) != 0 {
		t.Fatalf("d=%d frag=%q err=%v", d, frag, err)
	}
}

func TestFragmentPayloadMalformed(t *testing.T) {
	// Empty buffer and a truncated uvarint must both error, not panic.
	for _, buf := range [][]byte{nil, {}, {0x80}, {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}} {
		if _, _, err := DecodeFragmentPayload(buf); err == nil {
			t.Errorf("DecodeFragmentPayload(%v) accepted malformed payload", buf)
		}
	}
}
