package mural

import (
	"errors"
	"fmt"

	"github.com/mural-db/mural/internal/types"
)

// ClosureResult reports an in-engine (core) closure computation over a
// taxonomy table: the Figure 8 "Core" series. The Ω operator itself runs
// against the pinned in-memory hierarchy (§4.3); these methods compute the
// same closure directly against the stored taxonomy table, with and
// without a B+Tree on the parent attribute, so the paper's index axis can
// be profiled for the core implementation too.
type ClosureResult struct {
	// Size is |TC(root)|.
	Size int
	// HeapScans counts full-table scans (no-index mode: one per BFS level).
	HeapScans int
	// IndexProbes counts B-tree descents (index mode: one per member).
	IndexProbes int
	// IndexPages counts index pages visited.
	IndexPages int
}

// ComputeClosureScan computes the downward transitive closure of root over
// a taxonomy table laid out as (idCol INT, parentCol INT, ...), using one
// full heap scan per BFS level — the core no-index strategy.
func (e *Engine) ComputeClosureScan(table, idCol, parentCol string, root int64) (*ClosureResult, error) {
	t, ok := e.cat.TableByName(table)
	if !ok {
		return nil, fmt.Errorf("mural: no such table %q", table)
	}
	idIdx := t.ColumnIndex(idCol)
	parIdx := t.ColumnIndex(parentCol)
	if idIdx < 0 || parIdx < 0 {
		return nil, fmt.Errorf("mural: table %q lacks columns %q/%q", table, idCol, parentCol)
	}
	res := &ClosureResult{}
	closure := map[int64]bool{root: true}
	frontier := map[int64]bool{root: true}
	for len(frontier) > 0 {
		next := make(map[int64]bool)
		it, err := e.ScanTable(table)
		if err != nil {
			return nil, err
		}
		res.HeapScans++
		for {
			tup, ok, err := it.Next()
			if err != nil {
				return nil, errors.Join(err, it.Close())
			}
			if !ok {
				break
			}
			p := tup[parIdx]
			if p.IsNull() || !frontier[p.Int()] {
				continue
			}
			id := tup[idIdx].Int()
			if !closure[id] {
				closure[id] = true
				next[id] = true
			}
		}
		if err := it.Close(); err != nil {
			return nil, err
		}
		frontier = next
	}
	res.Size = len(closure)
	return res, nil
}

// ComputeClosureIndex computes the same closure using a B+Tree index on the
// parent attribute (§5.4's indexed core series): one index probe per
// closure member.
func (e *Engine) ComputeClosureIndex(table, idCol, parentCol, indexName string, root int64) (*ClosureResult, error) {
	t, ok := e.cat.TableByName(table)
	if !ok {
		return nil, fmt.Errorf("mural: no such table %q", table)
	}
	idIdx := t.ColumnIndex(idCol)
	if idIdx < 0 {
		return nil, fmt.Errorf("mural: table %q lacks column %q", table, idCol)
	}
	meta, ok := e.cat.IndexByName(indexName)
	if !ok || meta.Table != table || meta.Column != parentCol {
		return nil, fmt.Errorf("mural: %q is not an index on %s(%s)", indexName, table, parentCol)
	}
	res := &ClosureResult{}
	closure := map[int64]bool{root: true}
	frontier := []int64{root}
	for len(frontier) > 0 {
		var next []int64
		for _, node := range frontier {
			key := types.KeyOf(types.NewInt(node))
			rids, pages, err := e.IndexSearch(indexName, key, key)
			if err != nil {
				return nil, err
			}
			res.IndexProbes++
			res.IndexPages += pages
			tuples, err := e.FetchRIDs(table, rids)
			if err != nil {
				return nil, err
			}
			for _, tup := range tuples {
				id := tup[idIdx].Int()
				if !closure[id] {
					closure[id] = true
					next = append(next, id)
				}
			}
		}
		frontier = next
	}
	res.Size = len(closure)
	return res, nil
}
