package plan

import (
	"strings"
	"testing"

	"github.com/mural-db/mural/internal/sql"
)

// fragmentQueries are SELECT shapes whose plans (or pushable subtrees) the
// fragment codec must carry losslessly.
var fragmentQueries = []string{
	`SELECT * FROM names`,
	`SELECT id, text(name) FROM names WHERE pdist < 4`,
	`SELECT * FROM names WHERE name LEXEQUAL unitext('nehru', english) THRESHOLD 2`,
	`SELECT * FROM names WHERE name LEXEQUAL unitext('nehru', english) THRESHOLD 2 IN english, hindi`,
	`SELECT * FROM names WHERE name SEMEQUAL unitext('nehru', english)`,
	`SELECT count(*), sum(pdist), min(id), max(id) FROM names`,
	`SELECT lang(name), count(*) FROM names GROUP BY lang(name)`,
	`SELECT DISTINCT pdist FROM names LIMIT 7`,
	`SELECT * FROM names WHERE id = 3 OR (pdist > 2 AND NOT (id < 1))`,
	`SELECT * FROM names WHERE text(name) LIKE 'ne%'`,
}

// pushableSubtree descends past exchange operators, which the fragment
// whitelist excludes (fragments never nest).
func pushableSubtree(n *Node) *Node {
	switch n.Op {
	case OpGather, OpRemote:
		for _, c := range n.Children {
			if s := pushableSubtree(c); s != nil {
				return s
			}
		}
		return nil
	default:
		return n
	}
}

func TestFragmentRoundTrip(t *testing.T) {
	p := mkPlanner(testCatalog())
	for _, q := range fragmentQueries {
		node := pushableSubtree(planQuery(t, p, q))
		if node == nil {
			t.Fatalf("%s: no pushable subtree", q)
		}
		data, err := EncodeFragment(node)
		if err != nil {
			t.Fatalf("%s: encode: %v", q, err)
		}
		back, err := DecodeFragment(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", q, err)
		}
		if got, want := Format(back), Format(node); got != want {
			t.Errorf("%s: fragment round trip drifted:\n got: %s\nwant: %s", q, got, want)
		}
		// Idempotence: re-encoding the decoded tree is byte-identical.
		data2, err := EncodeFragment(back)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", q, err)
		}
		if string(data) != string(data2) {
			t.Errorf("%s: re-encoded fragment differs", q)
		}
	}
}

func TestFragmentRejectsExchangeOps(t *testing.T) {
	inner := &Node{Op: OpSeqScan, Table: "names"}
	for _, n := range []*Node{
		{Op: OpGather, Children: []*Node{inner}},
		{Op: OpRemote, Children: []*Node{inner}},
	} {
		if _, err := EncodeFragment(n); err == nil {
			t.Errorf("EncodeFragment(%s) must fail: exchanges cannot nest in fragments", n.Op)
		}
	}
}

func TestDecodeFragmentRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{{{`,
		"empty object":    `{}`,
		"unknown op":      `{"op":"teleport"}`,
		"exchange op":     `{"op":"gather","children":[{"op":"seqscan","table":"names"}]}`,
		"bad arity":       `{"op":"filter","children":[]}`,
		"two-child scan":  `{"op":"seqscan","table":"t","children":[{"op":"seqscan","table":"t"},{"op":"seqscan","table":"t"}]}`,
		"indexless probe": `{"op":"mtreescan","table":"names"}`,
		"bad agg kind":    `{"op":"aggregate","children":[{"op":"seqscan","table":"t"}],"aggs":[{"kind":99}]}`,
	}
	for name, data := range cases {
		if _, err := DecodeFragment([]byte(data)); err == nil {
			t.Errorf("%s: DecodeFragment accepted %q", name, data)
		}
	}
}

func TestDecodeFragmentDepthBounded(t *testing.T) {
	// 300 nested Filters exceed maxFragmentDepth; decode must fail cleanly,
	// not exhaust the stack.
	var b strings.Builder
	for i := 0; i < 300; i++ {
		b.WriteString(`{"op":"filter","children":[`)
	}
	b.WriteString(`{"op":"seqscan","table":"t"}`)
	for i := 0; i < 300; i++ {
		b.WriteString(`]}`)
	}
	if _, err := DecodeFragment([]byte(b.String())); err == nil {
		t.Error("DecodeFragment accepted a 300-deep fragment")
	}
}

func FuzzDecodeFragment(f *testing.F) {
	p := mkPlanner(testCatalog())
	for _, q := range fragmentQueries {
		node := pushableSubtree(planQueryF(f, p, q))
		if node == nil {
			continue
		}
		if data, err := EncodeFragment(node); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"op":"seqscan","table":"t"}`))
	f.Add([]byte(`{"op":"filter","children":[{"op":"seqscan","table":"t"}],"cond":{"t":"cmp","op":0}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		node, err := DecodeFragment(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode: the coordinator never ships a
		// fragment the shard cannot validate and the shard never accepts one
		// it could not have produced.
		if _, err := EncodeFragment(node); err != nil {
			t.Fatalf("decoded fragment does not re-encode: %v", err)
		}
	})
}

// planQueryF is planQuery for fuzz seeding (testing.F is not a *testing.T).
func planQueryF(f *testing.F, p *Planner, q string) *Node {
	f.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		f.Fatalf("parse %q: %v", q, err)
	}
	node, err := p.Plan(stmt.(*sql.Select))
	if err != nil {
		f.Fatalf("plan %q: %v", q, err)
	}
	return node
}
