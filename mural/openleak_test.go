package mural

import (
	"errors"
	"sync/atomic"
	"testing"

	"github.com/mural-db/mural/internal/storage"
)

// closeTrackingLog records whether the engine closed the WAL device.
type closeTrackingLog struct {
	storage.LogFile
	closed *atomic.Bool
}

func (l *closeTrackingLog) Close() error {
	l.closed.Store(true)
	return l.LogFile.Close()
}

// brokenReadDisk serves a real disk until armed, then fails every page read;
// it also records whether it was closed.
type brokenReadDisk struct {
	storage.Disk
	armed  *atomic.Bool
	closed *atomic.Bool
}

func (d *brokenReadDisk) ReadPage(id storage.PageID, buf []byte) error {
	if d.armed.Load() {
		return errors.New("injected read failure")
	}
	return d.Disk.ReadPage(id, buf)
}

func (d *brokenReadDisk) Close() error {
	d.closed.Store(true)
	return d.Disk.Close()
}

// A failing table reopen must not leak the WAL device or the data-file
// descriptors Open had already attached: before the fix, every `return nil,
// err` in the reopen loops dropped them on the floor.
func TestOpenClosesResourcesWhenReopenFails(t *testing.T) {
	dir := t.TempDir()
	var armed, walClosed atomic.Bool
	var diskClosed []*atomic.Bool
	cfg := Config{
		Dir: dir,
		WALWrap: func(f storage.LogFile) storage.LogFile {
			return &closeTrackingLog{LogFile: f, closed: &walClosed}
		},
		DiskWrap: func(name string, d storage.Disk) storage.Disk {
			closed := new(atomic.Bool)
			diskClosed = append(diskClosed, closed)
			return &brokenReadDisk{Disk: d, armed: &armed, closed: closed}
		},
	}

	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"CREATE TABLE a (id INT, s TEXT)",
		"INSERT INTO a VALUES (1, 'x')",
		"CREATE TABLE b (id INT, s TEXT)",
		"INSERT INTO b VALUES (1, 'y')",
	} {
		if _, err := e.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with page reads failing: OpenHeap for the first table errors
	// after the WAL (and possibly other disks) were already acquired.
	diskClosed, walClosed = nil, atomic.Bool{}
	armed.Store(true)
	if _, err := Open(cfg); err == nil {
		t.Fatal("Open succeeded although every page read fails")
	}
	if !walClosed.Load() {
		t.Error("Open leaked the WAL device after a failed table reopen")
	}
	if len(diskClosed) == 0 {
		t.Fatal("test bug: no disks were attached before the failure")
	}
	for i, closed := range diskClosed {
		if !closed.Load() {
			t.Errorf("Open leaked attached disk %d after a failed table reopen", i)
		}
	}
}
