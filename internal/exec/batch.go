package exec

import (
	"sync"
	"sync/atomic"

	"github.com/mural-db/mural/internal/plan"
	"github.com/mural-db/mural/internal/types"
)

// Batch-at-a-time execution. Eligible subtrees (scans, filters, projections,
// and the fused Ψ/Ω kernels in fuse.go) move rows in pooled ~BatchRows
// vectors instead of one interface call per tuple, so the per-row cost of a
// pipeline collapses to a slice append. Batch containers come from a
// sync.Pool-backed BatchPool owned by the query (workers of a Gather share
// the parent's), and every batch is either handed to the consumer or
// recycled on all paths — the membalance lint's pooled-batch rule enforces
// this, and BatchPool.InFlight lets tests assert it dynamically.
//
// Ownership contract: NextBatch transfers the batch to the caller, which
// must recycle it through evaluator.putBatch once consumed. A batch carries
// the governed-memory charge of its rows (chargeBatch/retire), so recycling
// also settles the query's memory accounting.

// BatchRows is the target vector width: large enough to amortize interface
// and channel hops over ~a thousand rows, small enough that a batch of
// typical tuples stays cache- and budget-friendly. It deliberately equals
// the governance checkpoint interval, so "one cancellation check per batch"
// is the same cadence the row engine amortizes to.
const BatchRows = 1024

// Batch is one vector of rows flowing between batch operators.
type Batch struct {
	Rows []types.Tuple
	// bytes is the governed-memory charge riding on this batch; retire
	// releases it when the batch is consumed or abandoned.
	bytes int64
}

// retire returns the batch's accounted bytes to the query's accountant.
// It hangs off Batch (not evaluator) so the release of the bytes field is
// visible to the same-type audit that watches its accumulation.
func (b *Batch) retire(ev *evaluator) {
	ev.release(b.bytes)
	b.bytes = 0
}

// BatchPool recycles batch containers for one query. Get/Put are safe for
// concurrent use (Gather workers share the query's pool); the steady state
// of a pipeline is one Get and one Put per BatchRows rows, reusing the same
// container, so execution allocates near-zero after warm-up.
type BatchPool struct {
	pool        sync.Pool
	outstanding atomic.Int64
}

// NewBatchPool builds an empty pool.
func NewBatchPool() *BatchPool {
	return &BatchPool{}
}

// Get returns an empty batch with BatchRows capacity.
func (p *BatchPool) Get() *Batch {
	p.outstanding.Add(1)
	if v := p.pool.Get(); v != nil {
		return v.(*Batch)
	}
	return &Batch{Rows: make([]types.Tuple, 0, BatchRows)}
}

// Put recycles a batch container. The caller must have settled the batch's
// memory charge first (putBatch does both). Row references are cleared so a
// pooled container never pins tuple memory.
func (p *BatchPool) Put(b *Batch) {
	if b == nil {
		return
	}
	clear(b.Rows[:cap(b.Rows)])
	b.Rows = b.Rows[:0]
	b.bytes = 0
	p.outstanding.Add(-1)
	p.pool.Put(b)
}

// InFlight reports Gets minus Puts: the number of batches currently owned
// by operators or consumers. After a query fully winds down it must be
// zero — the leak tests assert exactly that.
func (p *BatchPool) InFlight() int64 {
	if p == nil {
		return 0
	}
	return p.outstanding.Load()
}

// BatchIter is the batch-at-a-time operator face. NextBatch returns the
// next non-empty vector of rows, or nil at exhaustion; ownership of the
// returned batch transfers to the caller.
type BatchIter interface {
	NextBatch() (*Batch, error)
	Close() error
}

// getBatch draws an empty batch from the query's pool.
func (ev *evaluator) getBatch() *Batch {
	return ev.pool.Get()
}

// putBatch settles and recycles a consumed (or abandoned) batch: the
// accounted bytes are released and the container returns to the pool.
func (ev *evaluator) putBatch(b *Batch) {
	if b == nil {
		return
	}
	b.retire(ev)
	ev.pool.Put(b)
}

// chargeBatch charges a freshly filled batch's rows to the query's memory
// accountant; the charge rides on the batch until retire. Grow records the
// charge even when it fails (the caller still putBatches the batch, which
// releases it), mirroring the row engine's materializing operators.
func (ev *evaluator) chargeBatch(b *Batch) error {
	if ev.res == nil {
		return nil
	}
	n := tuplesBytes(b.Rows)
	b.bytes += n
	return ev.grow(n)
}

// wrapVec interposes batch-level instrumentation when a collector is armed;
// it is build()'s wrap() for batch operators.
func (ev *evaluator) wrapVec(n *plan.Node, it BatchIter) BatchIter {
	if ev.collector == nil {
		return it
	}
	return ev.collector.wrapBatch(n, it)
}

// batchRowIter adapts a batch pipeline to the row-at-a-time face for
// consumers that stayed Volcano (joins, sorts, the cursor itself). Consumed
// batches are recycled as soon as their last row is handed out; the row
// slices themselves stay valid — tuples own their memory.
type batchRowIter struct {
	ev   *evaluator
	src  BatchIter
	cur  *Batch
	pos  int
	done bool
}

func (a *batchRowIter) Next() (types.Tuple, bool, error) {
	for {
		if a.cur != nil && a.pos < len(a.cur.Rows) {
			t := a.cur.Rows[a.pos]
			a.pos++
			return t, true, nil
		}
		if a.cur != nil {
			a.ev.putBatch(a.cur)
			a.cur = nil
		}
		if a.done {
			return nil, false, nil
		}
		b, err := a.src.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			a.done = true
			return nil, false, nil
		}
		a.cur, a.pos = b, 0
	}
}

func (a *batchRowIter) Close() error {
	if a.cur != nil {
		a.ev.putBatch(a.cur)
		a.cur = nil
	}
	return a.src.Close()
}

// rowBatchIter adapts a row iterator to the batch face: the fallback when a
// scan's Env has no raw record access (or a striped partition forces row
// granularity). Each row is a cancellation checkpoint; the final batch may
// be short, and empty batches are never surfaced.
type rowBatchIter struct {
	ev   *evaluator
	src  TupleIter
	done bool
}

func (r *rowBatchIter) NextBatch() (*Batch, error) {
	if r.done {
		return nil, nil
	}
	b := r.ev.getBatch()
	for len(b.Rows) < BatchRows {
		if err := r.ev.tick(); err != nil {
			r.ev.putBatch(b)
			return nil, err
		}
		t, ok, err := r.src.Next()
		if err != nil {
			r.ev.putBatch(b)
			return nil, err
		}
		if !ok {
			r.done = true
			break
		}
		b.Rows = append(b.Rows, t)
	}
	if len(b.Rows) == 0 {
		r.ev.putBatch(b)
		return nil, nil
	}
	if err := r.ev.chargeBatch(b); err != nil {
		r.ev.putBatch(b)
		return nil, err
	}
	return b, nil
}

func (r *rowBatchIter) Close() error { return r.src.Close() }

// vectorFilterIter evaluates a predicate over whole batches, compacting
// survivors in place — no second buffer, no per-row operator hop. Batches
// that filter down to empty are recycled and the next one is pulled, so
// consumers never see an empty batch.
type vectorFilterIter struct {
	ev    *evaluator
	child BatchIter
	cond  plan.Expr
}

func (f *vectorFilterIter) NextBatch() (*Batch, error) {
	for {
		b, err := f.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		keep := b.Rows[:0]
		for _, t := range b.Rows {
			if err := f.ev.tick(); err != nil {
				f.ev.putBatch(b)
				return nil, err
			}
			pass, err := f.ev.evalBool(f.cond, t)
			if err != nil {
				f.ev.putBatch(b)
				return nil, err
			}
			if pass {
				keep = append(keep, t)
			}
		}
		// Clear the dropped tail so the container doesn't pin dead rows.
		clear(b.Rows[len(keep):])
		b.Rows = keep
		if len(b.Rows) > 0 {
			return b, nil
		}
		f.ev.putBatch(b)
	}
}

func (f *vectorFilterIter) Close() error { return f.child.Close() }

// vectorProjectIter computes projections over whole batches, rewriting rows
// in place.
type vectorProjectIter struct {
	ev    *evaluator
	child BatchIter
	projs []plan.Expr
}

func (p *vectorProjectIter) NextBatch() (*Batch, error) {
	b, err := p.child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	for i, t := range b.Rows {
		if err := p.ev.tick(); err != nil {
			p.ev.putBatch(b)
			return nil, err
		}
		out := make(types.Tuple, len(p.projs))
		for j, e := range p.projs {
			v, err := p.ev.eval(e, t)
			if err != nil {
				p.ev.putBatch(b)
				return nil, err
			}
			out[j] = v
		}
		b.Rows[i] = out
	}
	return b, nil
}

func (p *vectorProjectIter) Close() error { return p.child.Close() }

// recordSource feeds raw encoded records page-at-a-time to batch scans:
// either one serial RecordScan or a sequence of them claimed from a shared
// morselSource (inside a Gather worker).
type recordSource interface {
	nextPage(fn func(rec []byte) error) (bool, error)
	Close() error
}

// serialRecordSource wraps a single whole-table RecordScan.
type serialRecordSource struct {
	scan RecordScan
}

func (s *serialRecordSource) nextPage(fn func(rec []byte) error) (bool, error) {
	return s.scan.NextPage(fn)
}

func (s *serialRecordSource) Close() error { return s.scan.Close() }

// morselRecordSource claims page ranges from the shared morsel cursor and
// streams each claim's pages: the batch engine's face of a parallel scan.
type morselRecordSource struct {
	env RecordScanner
	src *morselSource
	cur RecordScan
}

func (m *morselRecordSource) nextPage(fn func(rec []byte) error) (bool, error) {
	for {
		if m.cur == nil {
			lo, hi, ok := m.src.claim()
			if !ok {
				return false, nil
			}
			rs, err := m.env.ScanRecords(m.src.table, lo, hi)
			if err != nil {
				return false, err
			}
			m.cur = rs
		}
		more, err := m.cur.NextPage(fn)
		if err != nil {
			return true, err
		}
		if more {
			return true, nil
		}
		err = m.cur.Close()
		m.cur = nil
		if err != nil {
			return false, err
		}
	}
}

func (m *morselRecordSource) Close() error {
	if m.cur == nil {
		return nil
	}
	err := m.cur.Close()
	m.cur = nil
	return err
}

// recordSourceFor builds the page-at-a-time record feed for a scan node, or
// ok=false when the Env has no raw record access or the morsel source fell
// back to row striping (table too small for page-granularity partitioning).
func recordSourceFor(env Env, ev *evaluator, n *plan.Node) (recordSource, bool, error) {
	rs, ok := env.(RecordScanner)
	if !ok {
		return nil, false, nil
	}
	if n.Parallel && ev.par != nil {
		src, err := ev.par.morselsFor(env, n)
		if err != nil {
			return nil, false, err
		}
		if src.striped {
			return nil, false, nil
		}
		return &morselRecordSource{env: rs, src: src}, true, nil
	}
	np, err := env.TablePages(n.Table)
	if err != nil {
		return nil, false, err
	}
	scan, err := rs.ScanRecords(n.Table, 0, np)
	if err != nil {
		return nil, false, err
	}
	return &serialRecordSource{scan: scan}, true, nil
}

// batchScanIter fills batches straight from heap pages: decode every live
// record of a page into the output batch, one buffer-pool pin per page. A
// batch may overshoot BatchRows by up to one page's rows so a page is never
// split across a pin boundary.
type batchScanIter struct {
	ev   *evaluator
	src  recordSource
	done bool
}

func (s *batchScanIter) NextBatch() (*Batch, error) {
	if s.done {
		return nil, nil
	}
	b := s.ev.getBatch()
	perRec := func(rec []byte) error {
		if err := s.ev.tick(); err != nil {
			return err
		}
		t, _, err := types.DecodeTuple(rec)
		if err != nil {
			return err
		}
		b.Rows = append(b.Rows, t)
		return nil
	}
	for len(b.Rows) < BatchRows {
		more, err := s.src.nextPage(perRec)
		if err != nil {
			s.ev.putBatch(b)
			return nil, err
		}
		if !more {
			s.done = true
			break
		}
	}
	if len(b.Rows) == 0 {
		s.ev.putBatch(b)
		return nil, nil
	}
	if err := s.ev.chargeBatch(b); err != nil {
		s.ev.putBatch(b)
		return nil, err
	}
	return b, nil
}

func (s *batchScanIter) Close() error { return s.src.Close() }

// buildVec attempts a batch-at-a-time pipeline for the subtree rooted at n.
// ok=false (with nil error) means this subtree has no vectorized form; the
// caller falls back to the row engine. Instrumentation happens here at
// batch granularity (wrapVec / the fused iterator's own buckets), so build
// must not re-wrap what buildVec returns.
func buildVec(env Env, ev *evaluator, n *plan.Node) (BatchIter, bool, error) {
	switch n.Op {
	case plan.OpSeqScan:
		src, ok, err := recordSourceFor(env, ev, n)
		if err != nil {
			return nil, false, err
		}
		var bi BatchIter
		if ok {
			bi = &batchScanIter{ev: ev, src: src}
		} else {
			it, err := buildRowScan(env, ev, n)
			if err != nil {
				return nil, false, err
			}
			bi = &rowBatchIter{ev: ev, src: unwrapGov(it)}
		}
		return ev.wrapVec(n, bi), true, nil
	case plan.OpFilter:
		child := n.Children[0]
		if ev.fuse && child.Op == plan.OpSeqScan {
			if kern := ev.compileFused(n.Cond); kern != nil {
				src, ok, err := recordSourceFor(env, ev, child)
				if err != nil {
					return nil, false, err
				}
				if ok {
					f := &fusedScanIter{ev: ev, src: src, kern: kern}
					if ev.collector != nil {
						f.scanSt = ev.collector.Stats(child)
						f.filtSt = ev.collector.Stats(n)
						f.timed = ev.collector.Timed()
					}
					return f, true, nil
				}
			}
		}
		cb, ok, err := buildVec(env, ev, child)
		if err != nil || !ok {
			return nil, ok, err
		}
		return ev.wrapVec(n, &vectorFilterIter{ev: ev, child: cb, cond: n.Cond}), true, nil
	case plan.OpProject:
		cb, ok, err := buildVec(env, ev, n.Children[0])
		if err != nil || !ok {
			return nil, ok, err
		}
		return ev.wrapVec(n, &vectorProjectIter{ev: ev, child: cb, projs: n.Projs}), true, nil
	}
	return nil, false, nil
}
