package mural_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/mural-db/mural/internal/bench"
)

// TestFeedbackFlipsMTreeMisplan reproduces the table4 misplan and checks
// that selectivity feedback corrects it: on the benchmark's names corpus at
// threshold 0 the histogram underestimates how many spellings collapse onto
// one phoneme, so the planner prices an M-Tree probe below the sequential
// scan. One observed (governed) execution establishes the true selectivity,
// and the re-planned statement must switch to the plain scan — with the
// same answer. ANALYZE then purges the feedback and the misplan returns.
func TestFeedbackFlipsMTreeMisplan(t *testing.T) {
	db, err := bench.NewNamesDB(bench.NamesConfig{Names: 1500, ProbeNames: 20, Seed: 2006})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	eng := db.Eng
	// Governed session: feedback folds only on governed executions.
	eng.MustExec(`SET statement_timeout = 600000`)

	flipped := false
	for _, u := range db.Queries {
		// Table 4's query shape: a bare TEXT literal (read as English).
		q := fmt.Sprintf(
			"SELECT * FROM names WHERE name LEXEQUAL '%s' THRESHOLD 0", u.Text)
		before := eng.MustExec("EXPLAIN " + q).Plan
		if !strings.Contains(before, "IndexScan(MTree)") {
			t.Fatalf("static plan must pick the M-Tree probe at k=0:\n%s", before)
		}
		cold := eng.MustExec(q)
		after := eng.MustExec("EXPLAIN " + q).Plan
		if strings.Contains(after, "IndexScan(MTree)") {
			// Few matches: the probe genuinely is cheaper, no flip expected.
			continue
		}
		if !strings.Contains(after, "SeqScan") {
			t.Fatalf("feedback plan is neither MTree nor SeqScan:\n%s", after)
		}
		flipped = true
		warm := eng.MustExec(q)
		if len(warm.Rows) != len(cold.Rows) {
			t.Fatalf("plan flip changed the answer: %d rows vs %d", len(warm.Rows), len(cold.Rows))
		}
		// DDL-class statements invalidate the observations.
		eng.MustExec(`ANALYZE`)
		eng.MustExec(`SET statement_timeout = 600000`)
		reset := eng.MustExec("EXPLAIN " + q).Plan
		if !strings.Contains(reset, "IndexScan(MTree)") {
			t.Fatalf("ANALYZE must purge feedback and restore the static plan:\n%s", reset)
		}
		break
	}
	if !flipped {
		t.Fatal("no probe query flipped to a plain scan after one observed run")
	}
}
