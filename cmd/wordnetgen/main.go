// Command wordnetgen emits the synthetic WordNet-shaped taxonomy as SQL or
// TSV. The generator is calibrated to the structural statistics the paper
// reports for the English noun hierarchy (§5.1: ~111K synsets, ~146K word
// forms) and interlinks additional languages by replication, exactly as the
// paper simulates non-English WordNets.
//
// Usage:
//
//	wordnetgen -synsets 111223 -langs english,tamil -format sql > tax.sql
//	wordnetgen -synsets 5000 -format stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/mural-db/mural/internal/types"
	"github.com/mural-db/mural/internal/wordnet"
)

func main() {
	var (
		synsets = flag.Int("synsets", wordnet.WordNetSynsets, "synset count")
		seed    = flag.Int64("seed", 2006, "generator seed")
		langsF  = flag.String("langs", "english", "comma-separated languages to interlink")
		format  = flag.String("format", "sql", "output format: sql|tsv|stats")
	)
	flag.Parse()

	var langs []types.LangID
	for _, name := range strings.Split(*langsF, ",") {
		l, ok := types.LangFromName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintln(os.Stderr, "wordnetgen: unknown language", name)
			os.Exit(1)
		}
		langs = append(langs, l)
	}
	net := wordnet.Generate(wordnet.Config{Synsets: *synsets, Seed: *seed, Langs: langs})
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *format {
	case "stats":
		fmt.Fprintf(w, "synsets:        %d\n", net.NumSynsets())
		for _, l := range net.Langs() {
			fmt.Fprintf(w, "word forms %-9s %d\n", l.String()+":", net.NumWordForms(l))
		}
		fmt.Fprintf(w, "relations:      %d\n", net.NumRelations())
		fmt.Fprintf(w, "max depth:      %d\n", net.MaxDepth())
		fmt.Fprintf(w, "avg depth:      %.2f\n", net.AvgDepth())
		fmt.Fprintf(w, "|TC(history)|:  %d\n", closureOf(net, "history"))
		fmt.Fprintf(w, "|TC(science)|:  %d\n", closureOf(net, "science"))
	case "tsv":
		fmt.Fprintln(w, "id\tparent\tdepth\tlemma")
		for id := 0; id < net.NumSynsets(); id++ {
			sid := wordnet.SynsetID(id)
			fmt.Fprintf(w, "%d\t%d\t%d\t%s\n", id, net.Parent(sid), net.Depth(sid),
				net.Lemma(types.LangEnglish, sid))
		}
	case "sql":
		fmt.Fprintln(w, "CREATE TABLE tax (id INT, parent INT);")
		const batch = 500
		var vals []string
		flush := func() {
			if len(vals) > 0 {
				fmt.Fprintf(w, "INSERT INTO tax VALUES %s;\n", strings.Join(vals, ", "))
				vals = vals[:0]
			}
		}
		for id := 0; id < net.NumSynsets(); id++ {
			p := net.Parent(wordnet.SynsetID(id))
			if p == wordnet.NoSynset {
				vals = append(vals, fmt.Sprintf("(%d, NULL)", id))
			} else {
				vals = append(vals, fmt.Sprintf("(%d, %d)", id, p))
			}
			if len(vals) >= batch {
				flush()
			}
		}
		flush()
		fmt.Fprintln(w, "CREATE INDEX idx_tax_parent ON tax (parent) USING BTREE;")
		fmt.Fprintln(w, "ANALYZE tax;")
	default:
		fmt.Fprintln(os.Stderr, "wordnetgen: unknown format", *format)
		os.Exit(1)
	}
}

func closureOf(net *wordnet.Net, word string) int {
	syns := net.SynsetsOf(types.LangEnglish, word)
	if len(syns) == 0 {
		return 0
	}
	return net.ClosureSize(syns[0])
}
