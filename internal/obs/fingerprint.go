package obs

import "strings"

// Fingerprint normalizes a SQL statement into its aggregation key: string
// and numeric literals are replaced by '?', case is folded, whitespace runs
// collapse to one space, and a trailing semicolon is dropped, so
//
//	SELECT * FROM names WHERE name LEXEQUAL 'Katrina'  THRESHOLD 2;
//	select * from names where name lexequal 'catherine' threshold 3
//
// both aggregate under
//
//	select * from names where name lexequal ? threshold ?
//
// Double-quoted identifiers keep their exact spelling (they are
// case-sensitive names, not data). Comma-separated runs of stripped
// literals collapse to a single '?' so IN-lists of different lengths
// share a fingerprint.
func Fingerprint(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	// lastLit is the index in q just past the most recent stripped literal,
	// or -1 when the previous token was not a stripped literal run. depth
	// tracks parenthesis nesting: literal runs fold only inside parens
	// (IN-lists, VALUES rows), never in a top-level select list.
	lastLit := -1
	depth := 0
	i := 0
	for i < len(q) {
		c := q[i]
		switch {
		case c == '\'':
			// String literal with '' escaping.
			j := i + 1
			for j < len(q) {
				if q[j] == '\'' {
					if j+1 < len(q) && q[j+1] == '\'' {
						j += 2
						continue
					}
					j++
					break
				}
				j++
			}
			emitQMark(&b, q, lastLit, i, depth)
			lastLit = j
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(q) && (q[j] >= '0' && q[j] <= '9' || q[j] == '.' ||
				q[j] == 'e' || q[j] == 'E' ||
				((q[j] == '+' || q[j] == '-') && (q[j-1] == 'e' || q[j-1] == 'E'))) {
				j++
			}
			emitQMark(&b, q, lastLit, i, depth)
			lastLit = j
			i = j
		case c == '"':
			// Quoted identifier: copy verbatim (case-sensitive name).
			j := i + 1
			for j < len(q) && q[j] != '"' {
				j++
			}
			if j < len(q) {
				j++
			}
			b.WriteString(q[i:j])
			lastLit = -1
			i = j
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if s := b.String(); len(s) > 0 && s[len(s)-1] != ' ' {
				b.WriteByte(' ')
			}
			i++
		default:
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			switch c {
			case '(':
				depth++
			case ')':
				depth--
			}
			b.WriteByte(c)
			if c != ',' {
				lastLit = -1
			}
			i++
		}
	}
	out := strings.TrimRight(b.String(), " ;")
	out = strings.TrimLeft(out, " ")
	return out
}

// emitQMark writes the '?' replacing a stripped literal at q[start:]. When
// the only source text between this literal and the previous stripped one
// is commas and whitespace, the literals are an IN-list run: the separator
// already emitted is rewound and the run keeps its single '?'.
func emitQMark(b *strings.Builder, q string, lastLit, start, depth int) {
	if lastLit >= 0 && depth > 0 {
		glue := true
		comma := false
		for k := lastLit; k < start; k++ {
			switch q[k] {
			case ' ', '\t', '\n', '\r':
			case ',':
				comma = true
			default:
				glue = false
			}
		}
		if glue && comma {
			s := strings.TrimRight(b.String(), " ,")
			b.Reset()
			b.WriteString(s)
			return
		}
	}
	if s := b.String(); len(s) > 0 {
		switch s[len(s)-1] {
		case ' ', '(', ',', '=', '<', '>':
		default:
			b.WriteByte(' ')
		}
	}
	b.WriteByte('?')
}
