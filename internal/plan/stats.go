package plan

import (
	"encoding/hex"

	"github.com/mural-db/mural/internal/catalog"
	"github.com/mural-db/mural/internal/phonetic"
	"github.com/mural-db/mural/internal/sql"
	"github.com/mural-db/mural/internal/types"
)

// Feedback cell kinds shared between the planner and the engine's
// observed-selectivity store.
const (
	FeedbackPsi   = "psi"
	FeedbackOmega = "omega"
)

// SelFeedback is the seam through which the estimator consults observed
// selectivities from past executions (Larch's observed-over-estimated
// template). The engine's obs.Feedback implements it; plan deliberately
// declares the interface itself so the dependency points engine → plan.
// Observed reports the established mean selectivity for a (kind, table,
// threshold band) cell, or ok=false while the cell has too few
// observations to trust.
type SelFeedback interface {
	Observed(kind, table string, band int) (float64, bool)
}

// selEstimator computes predicate selectivities from catalog statistics,
// implementing §3.4: end-biased histograms with threshold inflation for Ψ,
// closure-fraction estimates for Ω. When fb is set, established observed
// selectivities take precedence over the histogram estimates.
type selEstimator struct {
	stats  map[string]Stats  // by relation alias
	tables map[string]string // relation alias → catalog table name
	phon   *phonetic.Registry
	sem    SemEstimator
	fb     SelFeedback
	defK   int
}

// tableOf resolves a column reference to the catalog table providing it
// (empty when unknown), for keying feedback cells by table rather than by
// query-local alias.
func (se *selEstimator) tableOf(ref *sql.ColumnRef, schema []ColInfo) string {
	for _, ci := range schema {
		if ci.Name != ref.Column {
			continue
		}
		if ref.Table != "" && ci.Rel != ref.Table {
			continue
		}
		return se.tables[ci.Rel]
	}
	return ""
}

const (
	defaultEqSel    = 0.005
	defaultRangeSel = 0.33
	defaultSel      = 0.25
	defaultJoinSel  = 0.01
)

// colStats resolves a column reference to its stats (nil when unknown).
func (se *selEstimator) colStats(ref *sql.ColumnRef, schema []ColInfo) (*catalog.ColumnStats, Stats, bool) {
	for _, ci := range schema {
		if ci.Name != ref.Column {
			continue
		}
		if ref.Table != "" && ci.Rel != ref.Table {
			continue
		}
		st, ok := se.stats[ci.Rel]
		if !ok {
			return nil, Stats{}, false
		}
		cs := st.Cols[ref.Column]
		return cs, st, cs != nil
	}
	return nil, Stats{}, false
}

// constKey renders a literal the way ANALYZE keyed it: numerics via the
// order-preserving key encoding, text as-is (for UNITEXT histograms the
// phoneme form is produced by psiQueryPhoneme).
func constKey(v types.Value) (string, bool) {
	switch v.Kind() {
	case types.KindText, types.KindUniText:
		return v.Text(), true
	case types.KindInt, types.KindFloat:
		return hex.EncodeToString(types.KeyOf(v)), true
	case types.KindBool:
		return v.String(), true
	default:
		return "", false
	}
}

// psiQueryPhoneme converts a Ψ constant operand to phoneme space. A UNITEXT
// constant converts with its own language; a bare TEXT constant is read as
// the first listed language (or English), matching the paper's usage where
// the query name arrives "in one language".
func (se *selEstimator) psiQueryPhoneme(v types.Value, langs []types.LangID) (string, bool) {
	switch v.Kind() {
	case types.KindUniText:
		return se.phon.ToPhoneme(v.UniText()), true
	case types.KindText:
		lang := types.LangEnglish
		if len(langs) > 0 {
			lang = langs[0]
		}
		return se.phon.ToPhoneme(types.Compose(v.Text(), lang)), true
	default:
		return "", false
	}
}

// selectivity estimates the fraction of input rows satisfying the AST
// conjunct over the given schema. For join conjuncts the input is the cross
// product.
func (se *selEstimator) selectivity(e sql.Expr, schema []ColInfo) float64 {
	switch x := e.(type) {
	case *sql.Literal:
		if x.Value.Kind() == types.KindBool {
			if x.Value.Bool() {
				return 1
			}
			return 0
		}
		return defaultSel
	case *sql.Logical:
		l := se.selectivity(x.Left, schema)
		r := se.selectivity(x.Right, schema)
		if x.Op == sql.OpAnd {
			return l * r
		}
		return l + r - l*r
	case *sql.Not:
		return 1 - se.selectivity(x.Inner, schema)
	case *sql.Like:
		return 0.1 // PostgreSQL's patternsel-style default
	case *sql.Compare:
		return se.compareSel(x, schema)
	case *sql.LexEqual:
		return se.psiSel(x, schema)
	case *sql.SemEqual:
		return se.omegaSel(x, schema)
	default:
		return defaultSel
	}
}

func (se *selEstimator) compareSel(x *sql.Compare, schema []ColInfo) float64 {
	colL, litL := x.Left.(*sql.ColumnRef)
	colR, litR := x.Right.(*sql.ColumnRef)
	switch {
	case litL && litR:
		// col op col: join-style equality or default.
		csL, _, okL := se.colStats(colL, schema)
		csR, _, okR := se.colStats(colR, schema)
		if x.Op == sql.OpEq && okL && okR && csL.Hist != nil && csR.Hist != nil {
			return csL.Hist.JoinSelectivity(csR.Hist)
		}
		if x.Op == sql.OpEq {
			return defaultJoinSel
		}
		return defaultRangeSel
	case litL || litR:
		ref := colL
		var lit *sql.Literal
		op := x.Op
		if litL {
			l, ok := x.Right.(*sql.Literal)
			if !ok {
				return defaultSel
			}
			lit = l
		} else {
			ref = colR
			l, ok := x.Left.(*sql.Literal)
			if !ok {
				return defaultSel
			}
			lit = l
			// Mirror the operator: const op col == col mirrored-op const.
			switch x.Op {
			case sql.OpLt:
				op = sql.OpGt
			case sql.OpLe:
				op = sql.OpGe
			case sql.OpGt:
				op = sql.OpLt
			case sql.OpGe:
				op = sql.OpLe
			}
		}
		cs, _, ok := se.colStats(ref, schema)
		key, keyOK := constKey(lit.Value)
		if !ok || cs.Hist == nil || !keyOK {
			switch op {
			case sql.OpEq:
				return defaultEqSel
			case sql.OpNe:
				return 1 - defaultEqSel
			default:
				return defaultRangeSel
			}
		}
		switch op {
		case sql.OpEq:
			return cs.Hist.EqSelectivity(key)
		case sql.OpNe:
			return 1 - cs.Hist.EqSelectivity(key)
		case sql.OpLt, sql.OpLe:
			return cs.Hist.RangeSelectivity("", key, false, true)
		default:
			return cs.Hist.RangeSelectivity(key, "", true, false)
		}
	default:
		return defaultSel
	}
}

func (se *selEstimator) psiSel(x *sql.LexEqual, schema []ColInfo) float64 {
	k := x.Threshold
	if k < 0 {
		k = se.defK
	}
	colL, isColL := x.Left.(*sql.ColumnRef)
	colR, isColR := x.Right.(*sql.ColumnRef)
	litL, isLitL := x.Left.(*sql.Literal)
	litR, isLitR := x.Right.(*sql.Literal)
	switch {
	case isColL && isColR:
		csL, _, okL := se.colStats(colL, schema)
		csR, _, okR := se.colStats(colR, schema)
		if okL && okR && csL.Hist != nil && csR.Hist != nil {
			return csL.Hist.ApproxJoinSelectivity(csR.Hist, k)
		}
		return defaultJoinSel * float64(k+1)
	case isColL && isLitR, isColR && isLitL:
		ref, lit := colL, litR
		if !isColL {
			ref, lit = colR, litL
		}
		// Observed-over-estimated: an established feedback cell for this
		// table and threshold band beats the histogram's approximation.
		if se.fb != nil {
			if tbl := se.tableOf(ref, schema); tbl != "" {
				if sel, ok := se.fb.Observed(FeedbackPsi, tbl, k); ok {
					return clamp01(sel)
				}
			}
		}
		cs, _, ok := se.colStats(ref, schema)
		ph, phOK := se.psiQueryPhoneme(lit.Value, x.Langs)
		if ok && cs.Hist != nil && phOK {
			return cs.Hist.ApproxSelectivity(ph, k)
		}
		return defaultEqSel * float64(k+1)
	default:
		return defaultEqSel * float64(k+1)
	}
}

func (se *selEstimator) omegaSel(x *sql.SemEqual, schema []ColInfo) float64 {
	if se.fb != nil {
		if ref, ok := x.Left.(*sql.ColumnRef); ok {
			if tbl := se.tableOf(ref, schema); tbl != "" {
				if sel, ok := se.fb.Observed(FeedbackOmega, tbl, 0); ok {
					return clamp01(sel)
				}
			}
		}
	}
	if se.sem == nil {
		return defaultSel
	}
	// Ω(lhs, rhs): the closure is computed on the RHS value (§3.4.2: exact
	// |TC(x)|/n when the concept is known, h̄-based fallback otherwise).
	if lit, ok := x.Right.(*sql.Literal); ok {
		lang := types.LangEnglish
		var text string
		switch lit.Value.Kind() {
		case types.KindUniText:
			u := lit.Value.UniText()
			text, lang = u.Text, u.Lang
		case types.KindText:
			// A bare TEXT concept reads as English; the IN clause names
			// output languages, not the concept's language.
			text = lit.Value.Text()
		}
		if text != "" {
			if frac := se.sem.ClosureFrac(text, lang); frac >= 0 {
				return clamp01(frac)
			}
		}
	}
	return clamp01(se.sem.AvgClosureFrac())
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
