module github.com/mural-db/mural

go 1.22
