// Package plan implements the MURAL query planner: logical analysis of
// parsed SELECT statements, compiled positional expressions, access-path
// and join-order enumeration, and the operator cost and selectivity models
// of the paper's Section 3.3-3.4 (Table 3). The planner produces a physical
// Node tree that the exec package interprets.
package plan

import (
	"errors"
	"fmt"
	"strings"

	"github.com/mural-db/mural/internal/sql"
	"github.com/mural-db/mural/internal/types"
)

// ErrUnknownColumn marks a compile failure caused by a column that is not
// in the compiling schema. The planner treats it as "defer this conjunct to
// a wider schema"; every other compile error is a real semantic error and
// must surface to the user.
var ErrUnknownColumn = errors.New("unknown column")

// ColInfo describes one column of an intermediate schema: the relation
// alias it came from, its name and type.
type ColInfo struct {
	Rel  string
	Name string
	Kind types.Kind
}

// String renders the column for EXPLAIN.
func (c ColInfo) String() string {
	if c.Rel != "" {
		return c.Rel + "." + c.Name
	}
	return c.Name
}

// Expr is a compiled expression: column references are resolved to
// positions, so evaluation needs only a tuple (plus the engine's
// phonetic/semantic runtimes for the multilingual predicates).
type Expr interface{ exprNode() }

// ColIdx references a column by position.
type ColIdx struct {
	Idx  int
	Kind types.Kind
	// Display is the original name, for EXPLAIN.
	Display string
}

// Const is a literal.
type Const struct{ Val types.Value }

// Cmp is a comparison.
type Cmp struct {
	Op   sql.CmpOp
	L, R Expr
}

// AndOr is a logical connective.
type AndOr struct {
	Or   bool
	L, R Expr
}

// Neg is logical NOT.
type Neg struct{ Inner Expr }

// Like is the compiled LIKE predicate.
type Like struct {
	L, Pattern Expr
}

// Psi is the compiled Ψ predicate. Threshold is resolved (session default
// applied) at plan time.
type Psi struct {
	L, R      Expr
	Threshold int
	Langs     []types.LangID
}

// Omega is the compiled Ω predicate.
type Omega struct {
	L, R  Expr
	Langs []types.LangID
}

// Call is a compiled scalar function application (unitext, text, lang,
// phoneme). Aggregates never appear inside compiled expressions; the
// planner hoists them into Aggregate nodes and replaces them with ColIdx
// references.
type Call struct {
	Kind sql.FuncKind
	Name string // FuncCustom only
	Args []Expr
}

func (*ColIdx) exprNode() {}
func (*Const) exprNode()  {}
func (*Cmp) exprNode()    {}
func (*AndOr) exprNode()  {}
func (*Neg) exprNode()    {}
func (*Like) exprNode()   {}
func (*Psi) exprNode()    {}
func (*Omega) exprNode()  {}
func (*Call) exprNode()   {}

// ExprString renders a compiled expression for EXPLAIN.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *ColIdx:
		if x.Display != "" {
			return x.Display
		}
		return fmt.Sprintf("$%d", x.Idx)
	case *Const:
		if x.Val.Kind() == types.KindText {
			return "'" + x.Val.Text() + "'"
		}
		return x.Val.String()
	case *Cmp:
		return ExprString(x.L) + " " + x.Op.String() + " " + ExprString(x.R)
	case *AndOr:
		op := " AND "
		if x.Or {
			op = " OR "
		}
		return "(" + ExprString(x.L) + op + ExprString(x.R) + ")"
	case *Neg:
		return "NOT (" + ExprString(x.Inner) + ")"
	case *Like:
		return ExprString(x.L) + " LIKE " + ExprString(x.Pattern)
	case *Psi:
		s := fmt.Sprintf("Ψ(%s, %s, k=%d)", ExprString(x.L), ExprString(x.R), x.Threshold)
		if len(x.Langs) > 0 {
			s += " IN " + langNames(x.Langs)
		}
		return s
	case *Omega:
		s := fmt.Sprintf("Ω(%s, %s)", ExprString(x.L), ExprString(x.R))
		if len(x.Langs) > 0 {
			s += " IN " + langNames(x.Langs)
		}
		return s
	case *Call:
		fname := x.Kind.String()
		if x.Kind == sql.FuncCustom {
			fname = x.Name
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return fname + "(" + strings.Join(args, ", ") + ")"
	default:
		return "<?>"
	}
}

func langNames(langs []types.LangID) string {
	parts := make([]string, len(langs))
	for i, l := range langs {
		parts[i] = l.String()
	}
	return strings.Join(parts, ",")
}

// Compiler resolves AST expressions against a schema.
type Compiler struct {
	Schema []ColInfo
	// DefaultThreshold replaces an unspecified LEXEQUAL threshold (the
	// session system-table value of §4.2).
	DefaultThreshold int
}

// Compile resolves one AST expression.
func (c *Compiler) Compile(e sql.Expr) (Expr, error) {
	switch x := e.(type) {
	case *sql.Literal:
		return &Const{Val: x.Value}, nil
	case *sql.ColumnRef:
		idx := -1
		for i, col := range c.Schema {
			if col.Name != x.Column {
				continue
			}
			if x.Table != "" && col.Rel != x.Table {
				continue
			}
			if idx >= 0 {
				return nil, fmt.Errorf("plan: ambiguous column %q", x.String())
			}
			idx = i
		}
		if idx < 0 {
			return nil, fmt.Errorf("plan: %w %q", ErrUnknownColumn, x.String())
		}
		return &ColIdx{Idx: idx, Kind: c.Schema[idx].Kind, Display: c.Schema[idx].String()}, nil
	case *sql.Compare:
		l, err := c.Compile(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.Compile(x.Right)
		if err != nil {
			return nil, err
		}
		if lk, rk, ok := staticKinds(l, r); ok && !types.Comparable(lk, rk) {
			return nil, fmt.Errorf("plan: cannot compare %s with %s", lk, rk)
		}
		return &Cmp{Op: x.Op, L: l, R: r}, nil
	case *sql.Logical:
		l, err := c.Compile(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.Compile(x.Right)
		if err != nil {
			return nil, err
		}
		return &AndOr{Or: x.Op == sql.OpOr, L: l, R: r}, nil
	case *sql.Not:
		inner, err := c.Compile(x.Inner)
		if err != nil {
			return nil, err
		}
		return &Neg{Inner: inner}, nil
	case *sql.Like:
		l, err := c.Compile(x.Left)
		if err != nil {
			return nil, err
		}
		pat, err := c.Compile(x.Pattern)
		if err != nil {
			return nil, err
		}
		return &Like{L: l, Pattern: pat}, nil
	case *sql.LexEqual:
		l, err := c.Compile(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.Compile(x.Right)
		if err != nil {
			return nil, err
		}
		k := x.Threshold
		if k < 0 {
			k = c.DefaultThreshold
		}
		return &Psi{L: l, R: r, Threshold: k, Langs: x.Langs}, nil
	case *sql.SemEqual:
		l, err := c.Compile(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.Compile(x.Right)
		if err != nil {
			return nil, err
		}
		return &Omega{L: l, R: r, Langs: x.Langs}, nil
	case *sql.FuncCall:
		if x.Kind.IsAggregate() {
			return nil, fmt.Errorf("plan: aggregate %s not allowed here", x.Kind)
		}
		call := &Call{Kind: x.Kind, Name: x.Name}
		for _, a := range x.Args {
			ca, err := c.Compile(a)
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, ca)
		}
		switch x.Kind {
		case sql.FuncUniText:
			if len(call.Args) != 2 {
				return nil, fmt.Errorf("plan: unitext takes (text, lang)")
			}
		case sql.FuncText, sql.FuncLang, sql.FuncPhoneme:
			if len(call.Args) != 1 {
				return nil, fmt.Errorf("plan: %s takes one argument", x.Kind)
			}
		case sql.FuncCustom:
			if len(call.Args) != 2 {
				return nil, fmt.Errorf("plan: registered operator %s takes two arguments", x.Name)
			}
		}
		return call, nil
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

func staticKinds(l, r Expr) (types.Kind, types.Kind, bool) {
	lk, lok := staticKind(l)
	rk, rok := staticKind(r)
	return lk, rk, lok && rok
}

func staticKind(e Expr) (types.Kind, bool) {
	switch x := e.(type) {
	case *ColIdx:
		return x.Kind, true
	case *Const:
		if x.Val.IsNull() {
			return types.KindNull, false
		}
		return x.Val.Kind(), true
	default:
		return types.KindNull, false
	}
}

// ExprKind infers the static result kind of a compiled expression, used for
// projection schemas. Unknown cases default to TEXT.
func ExprKind(e Expr) types.Kind {
	switch x := e.(type) {
	case *ColIdx:
		return x.Kind
	case *Const:
		return x.Val.Kind()
	case *Cmp, *AndOr, *Neg, *Like, *Psi, *Omega:
		return types.KindBool
	case *Call:
		switch x.Kind {
		case sql.FuncUniText:
			return types.KindUniText
		case sql.FuncText, sql.FuncLang, sql.FuncPhoneme:
			return types.KindText
		case sql.FuncCount:
			return types.KindInt
		case sql.FuncSum, sql.FuncAvg:
			return types.KindFloat
		default:
			return types.KindText
		}
	default:
		return types.KindText
	}
}

// Walk visits every node of a compiled expression tree.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Cmp:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *AndOr:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Neg:
		Walk(x.Inner, fn)
	case *Like:
		Walk(x.L, fn)
		Walk(x.Pattern, fn)
	case *Psi:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Omega:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Call:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	}
}

// shiftCols returns a copy of e with every ColIdx offset by delta (used
// when an expression compiled against a join schema must be evaluated
// against the right input only).
func shiftCols(e Expr, delta int) Expr {
	switch x := e.(type) {
	case *ColIdx:
		return &ColIdx{Idx: x.Idx + delta, Kind: x.Kind, Display: x.Display}
	case *Const:
		return x
	case *Cmp:
		return &Cmp{Op: x.Op, L: shiftCols(x.L, delta), R: shiftCols(x.R, delta)}
	case *AndOr:
		return &AndOr{Or: x.Or, L: shiftCols(x.L, delta), R: shiftCols(x.R, delta)}
	case *Neg:
		return &Neg{Inner: shiftCols(x.Inner, delta)}
	case *Like:
		return &Like{L: shiftCols(x.L, delta), Pattern: shiftCols(x.Pattern, delta)}
	case *Psi:
		return &Psi{L: shiftCols(x.L, delta), R: shiftCols(x.R, delta), Threshold: x.Threshold, Langs: x.Langs}
	case *Omega:
		return &Omega{L: shiftCols(x.L, delta), R: shiftCols(x.R, delta), Langs: x.Langs}
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = shiftCols(a, delta)
		}
		return &Call{Kind: x.Kind, Args: args}
	default:
		return e
	}
}
