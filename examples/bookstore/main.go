// Bookstore: the paper's motivating e-Commerce scenario (Figure 1) at a
// realistic scale. A Books.com catalog assembled from per-language sources
// is loaded into one engine, indexed, and queried across scripts: a
// customer types a romanized author name and gets the author's works in
// every requested language, with the optimizer choosing between sequential
// and M-Tree access paths as selectivity changes.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/mural-db/mural/internal/dataset"
	"github.com/mural-db/mural/mural"
)

func main() {
	db, err := mural.Open(mural.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Assemble the multilingual catalog: one logical Book table sourced
	// from four language-specific databases (the paper's framing).
	db.MustExec(`CREATE TABLE book (id INT, author UNITEXT, title TEXT, price FLOAT)`)
	recs := dataset.GenerateNames(dataset.NamesConfig{Records: 4000, Seed: 7})
	var rows []string
	for _, r := range recs {
		rows = append(rows, fmt.Sprintf("(%d, unitext('%s', %s), 'Collected Works Vol %d', %d.99)",
			r.ID, strings.ReplaceAll(r.Name.Text, "'", "''"), r.Name.Lang, r.ID%9+1, 5+r.ID%40))
		if len(rows) == 500 {
			db.MustExec(`INSERT INTO book VALUES ` + strings.Join(rows, ","))
			rows = rows[:0]
		}
	}
	if len(rows) > 0 {
		db.MustExec(`INSERT INTO book VALUES ` + strings.Join(rows, ","))
	}
	db.MustExec(`CREATE INDEX idx_book_author ON book (author) USING MTREE`)
	db.MustExec(`ANALYZE book`)

	// A customer searches for an author's works across scripts. The query
	// name is one of the dataset's romanized cluster bases, so the same
	// name exists in Devanagari, Tamil and Kannada renderings.
	query := recs[0].Roman
	fmt.Printf("customer searches for %q across english, hindi, tamil, kannada\n\n", query)
	res, err := db.Exec(fmt.Sprintf(`SELECT id, text(author), lang(author), title, price FROM book
		WHERE author LEXEQUAL '%s' THRESHOLD 2 IN english, hindi, tamil, kannada
		ORDER BY price LIMIT 10`, query))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  #%-5v %-14v [%-8v] %-22v $%v\n", row[0], row[1], row[2], row[3], row[4])
	}
	fmt.Printf("\n%d matches; executor evaluated %d Ψ predicates, visited %d index pages\n",
		len(res.Rows), res.Stats.PsiEvaluations, res.Stats.IndexPages)

	// How the optimizer executed it:
	fmt.Println("\nplan:")
	fmt.Print(res.Plan)

	// Catalog analytics with standard SQL over the same table: the
	// multilingual datatype coexists with ordinary relational operations.
	res, err = db.Exec(`SELECT lang(author), count(*), avg(price) FROM book
		GROUP BY lang(author) ORDER BY lang(author)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncatalog by language:")
	for _, row := range res.Rows {
		fmt.Printf("  %-10v %6v books, avg price %.2f\n", row[0], row[1], row[2].Float())
	}
}
