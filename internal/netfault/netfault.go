// Package netfault injects network faults into net.Conn streams: partial
// writes, stalls and connection resets, each fired with a configured
// probability from a seeded PRNG. It plugs into the server's ConnWrap and
// the client Dialer's Wrap seams, turning the protocol tests into a chaos
// harness — the assertions stay the same, the transport just misbehaves.
//
// An Injector is safe for concurrent use across many connections and can be
// toggled at runtime, so a test can run a fault storm and then verify that a
// clean connection still works against the same server.
package netfault

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the fault mix. Probabilities are per I/O operation, in [0, 1];
// zero disables that fault.
type Config struct {
	// Seed makes a run reproducible; 0 picks a fixed default seed.
	Seed int64
	// PartialWrite is the probability a Write delivers only a prefix before
	// the rest (with a scheduling pause between), exercising short-write
	// handling in the framing layer.
	PartialWrite float64
	// Stall is the probability an operation sleeps StallFor first,
	// exercising deadline and timeout paths.
	Stall float64
	// StallFor is the stall duration (default 5ms).
	StallFor time.Duration
	// Reset is the probability an operation abruptly closes the connection
	// instead of performing, exercising reconnect and error surfacing.
	Reset float64
}

// Stats counts faults actually fired.
type Stats struct {
	PartialWrites int64
	Stalls        int64
	Resets        int64
}

// Injector wraps connections with the configured fault behavior.
type Injector struct {
	cfg     Config
	enabled atomic.Bool

	mu  sync.Mutex
	rng *rand.Rand

	partials atomic.Int64
	stalls   atomic.Int64
	resets   atomic.Int64
}

// New builds an enabled Injector.
func New(cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x6d75_7261 // "mura"
	}
	if cfg.StallFor <= 0 {
		cfg.StallFor = 5 * time.Millisecond
	}
	inj := &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	inj.enabled.Store(true)
	return inj
}

// SetEnabled toggles fault firing; wrapped connections pass everything
// through unchanged while disabled.
func (inj *Injector) SetEnabled(on bool) { inj.enabled.Store(on) }

// Enabled reports whether faults may fire.
func (inj *Injector) Enabled() bool { return inj.enabled.Load() }

// Stats snapshots the fault counters.
func (inj *Injector) Stats() Stats {
	return Stats{
		PartialWrites: inj.partials.Load(),
		Stalls:        inj.stalls.Load(),
		Resets:        inj.resets.Load(),
	}
}

// roll draws a uniform [0,1) sample.
func (inj *Injector) roll() float64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.rng.Float64()
}

// Wrap layers fault injection over a connection.
func (inj *Injector) Wrap(c net.Conn) net.Conn {
	return &faultConn{Conn: c, inj: inj}
}

// faultConn is one wrapped connection.
type faultConn struct {
	net.Conn
	inj *Injector
}

// fault runs the pre-operation fault mix: maybe stall, maybe reset. It
// reports whether the operation should proceed; on reset the connection is
// already closed and the caller surfaces the resulting I/O error.
func (fc *faultConn) fault() bool {
	inj := fc.inj
	if !inj.Enabled() {
		return true
	}
	if p := inj.cfg.Stall; p > 0 && inj.roll() < p {
		inj.stalls.Add(1)
		time.Sleep(inj.cfg.StallFor)
	}
	if p := inj.cfg.Reset; p > 0 && inj.roll() < p {
		inj.resets.Add(1)
		_ = fc.Conn.Close()
		return false
	}
	return true
}

func (fc *faultConn) Read(b []byte) (int, error) {
	if !fc.fault() {
		return 0, net.ErrClosed
	}
	return fc.Conn.Read(b)
}

func (fc *faultConn) Write(b []byte) (int, error) {
	inj := fc.inj
	if !fc.fault() {
		return 0, net.ErrClosed
	}
	if p := inj.cfg.PartialWrite; inj.Enabled() && p > 0 && len(b) > 1 && inj.roll() < p {
		inj.partials.Add(1)
		cut := 1 + int(inj.roll()*float64(len(b)-1))
		n, err := fc.Conn.Write(b[:cut])
		if err != nil {
			return n, err
		}
		// Yield so the peer observes the short delivery before the rest.
		time.Sleep(200 * time.Microsecond)
		m, err := fc.Conn.Write(b[cut:])
		return n + m, err
	}
	return fc.Conn.Write(b)
}
