package server

import (
	"errors"
	"testing"

	"github.com/mural-db/mural/internal/phonetic"
	"github.com/mural-db/mural/internal/plan"
	"github.com/mural-db/mural/internal/sql"
	"github.com/mural-db/mural/internal/wire"
)

// TestFragmentQueryOverWire ships a serialized scan fragment through
// MsgFragment and asserts the rows match the same query sent as SQL.
func TestFragmentQueryOverWire(t *testing.T) {
	eng, conn := startServer(t)
	if _, err := conn.Exec(`CREATE TABLE t (id INT, name UNITEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(`INSERT INTO t VALUES (1, unitext('Nehru', english)), (2, unitext('Gandhi', english)), (3, unitext('Patel', english))`); err != nil {
		t.Fatal(err)
	}

	pl := &plan.Planner{Cat: eng.Catalog(), Phon: phonetic.DefaultRegistry(), Opts: plan.DefaultOptions()}
	stmt, err := sql.Parse(`SELECT id, text(name) FROM t WHERE id < 3`)
	if err != nil {
		t.Fatal(err)
	}
	node, err := pl.Plan(stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	frag, err := plan.EncodeFragment(node)
	if err != nil {
		t.Fatal(err)
	}

	cur, err := conn.QueryFragment(wire.EncodeFragmentPayload(0, frag))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := cur.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Int() != 1 || rows[1][1].Text() != "Gandhi" {
		t.Errorf("fragment rows = %v", rows)
	}

	// The session must stay usable for ordinary SQL afterwards.
	cur2, err := conn.Query(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	all, err := cur2.All()
	if err != nil || all[0][0].Int() != 3 {
		t.Errorf("follow-up query: rows=%v err=%v", all, err)
	}
}

// TestFragmentMalformedRejected sends garbage fragment payloads; the server
// must answer with MsgErr and keep the session alive.
func TestFragmentMalformedRejected(t *testing.T) {
	_, conn := startServer(t)
	for _, payload := range [][]byte{
		nil, // empty: no deadline uvarint at all
		wire.EncodeFragmentPayload(0, []byte(`{{{`)),
		wire.EncodeFragmentPayload(0, []byte(`{"op":"teleport"}`)),
		wire.EncodeFragmentPayload(0, []byte(`{"op":"gather","children":[{"op":"seqscan","table":"t"}]}`)),
		wire.EncodeFragmentPayload(0, []byte(`{"op":"seqscan","table":"no_such_table"}`)),
	} {
		if _, err := conn.QueryFragment(payload); err == nil {
			t.Errorf("QueryFragment(%q) succeeded", payload)
		}
	}
	if err := conn.Ping(); err != nil {
		t.Fatalf("session dead after malformed fragments: %v", err)
	}
}

// TestFragmentOversizedRejected asserts a fragment payload above the frame
// cap is refused client-side with the typed wire.ErrTooLarge before any
// bytes hit the network, and the connection stays usable.
func TestFragmentOversizedRejected(t *testing.T) {
	_, conn := startServer(t)
	huge := make([]byte, wire.MaxPayload+1)
	if _, err := conn.QueryFragment(huge); !errors.Is(err, wire.ErrTooLarge) {
		t.Fatalf("oversized fragment: got %v, want ErrTooLarge", err)
	}
	if err := conn.Ping(); err != nil {
		t.Fatalf("session dead after oversized fragment: %v", err)
	}
}
