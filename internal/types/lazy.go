package types

import (
	"encoding/binary"
	"fmt"
)

// Lazy field access over encoded tuples. The executor's fused scan kernels
// evaluate predicates against raw heap records without materializing a
// Tuple: RawField skips to the predicate's column in one pass over the
// length prefixes, and UniTextViews exposes the payload as byte views that
// alias the record buffer. Nothing here allocates.

// RawField returns the encoded bytes (kind byte plus payload) of field idx
// of an encoded tuple. The returned slice aliases rec and is only valid as
// long as rec is; DecodeValue accepts it directly when the caller does want
// a materialized value.
func RawField(rec []byte, idx int) ([]byte, error) {
	n64, sz := binary.Uvarint(rec)
	if sz <= 0 {
		return nil, fmt.Errorf("types: raw field: bad column count")
	}
	if idx < 0 || uint64(idx) >= n64 {
		return nil, fmt.Errorf("types: raw field %d out of range (tuple width %d)", idx, n64)
	}
	off := sz
	for i := 0; i < idx; i++ {
		w, err := encodedValueSize(rec[off:])
		if err != nil {
			return nil, err
		}
		off += w
	}
	w, err := encodedValueSize(rec[off:])
	if err != nil {
		return nil, err
	}
	return rec[off : off+w], nil
}

// encodedValueSize computes the width of one encoded value by walking its
// length prefixes, without decoding the payload.
func encodedValueSize(buf []byte) (int, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("types: field size: empty buffer")
	}
	n := 1
	switch Kind(buf[0]) {
	case KindNull:
	case KindBool:
		n++
	case KindInt:
		_, sz := binary.Varint(buf[n:])
		if sz <= 0 {
			return 0, fmt.Errorf("types: field size: bad varint")
		}
		n += sz
	case KindFloat:
		n += 8
	case KindText:
		sz, err := skipLenPrefixed(buf[n:])
		if err != nil {
			return 0, err
		}
		n += sz
	case KindUniText:
		n += 2
		if n > len(buf) {
			return 0, fmt.Errorf("types: field size: short unitext buffer")
		}
		for i := 0; i < 2; i++ {
			sz, err := skipLenPrefixed(buf[n:])
			if err != nil {
				return 0, err
			}
			n += sz
		}
	default:
		return 0, fmt.Errorf("types: field size: unknown kind %d", buf[0])
	}
	if n > len(buf) {
		return 0, fmt.Errorf("types: field size: short buffer")
	}
	return n, nil
}

func skipLenPrefixed(buf []byte) (int, error) {
	l, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return 0, fmt.Errorf("types: field size: bad length prefix")
	}
	if uint64(len(buf)-sz) < l {
		return 0, fmt.Errorf("types: field size: short string")
	}
	return sz + int(l), nil
}

// UniTextViews decodes a KindUniText field (as returned by RawField) into
// its language plus zero-copy views of the text and phoneme bytes. The
// returned slices alias field — and through it the pinned page the record
// sits on — so they must not be retained past the page pin.
func UniTextViews(field []byte) (LangID, []byte, []byte, error) {
	if len(field) < 3 || Kind(field[0]) != KindUniText {
		return LangUnknown, nil, nil, fmt.Errorf("types: unitext views: not a UNITEXT field")
	}
	lang := LangID(binary.BigEndian.Uint16(field[1:]))
	text, sz, err := viewLenPrefixed(field[3:])
	if err != nil {
		return LangUnknown, nil, nil, fmt.Errorf("types: unitext views: text: %w", err)
	}
	ph, _, err := viewLenPrefixed(field[3+sz:])
	if err != nil {
		return LangUnknown, nil, nil, fmt.Errorf("types: unitext views: phoneme: %w", err)
	}
	return lang, text, ph, nil
}

func viewLenPrefixed(buf []byte) ([]byte, int, error) {
	l, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("bad length prefix")
	}
	if uint64(len(buf)-sz) < l {
		return nil, 0, fmt.Errorf("short buffer")
	}
	return buf[sz : sz+int(l)], sz + int(l), nil
}
