// Outsidevscore: the paper's central comparison, live. One engine serves a
// multilingual names table over the wire protocol; the same LexEQUAL query
// is answered (a) natively in the engine ("core", the paper's
// first-class-operator path) and (b) by a client-side UDF over shipped rows
// ("outside-the-server", the paper's PL/SQL baseline). Both must agree on
// the answer; the timings show why the paper pushes the operators into the
// kernel.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/mural-db/mural/internal/client"
	"github.com/mural-db/mural/internal/dataset"
	"github.com/mural-db/mural/internal/phonetic"
	"github.com/mural-db/mural/internal/server"
	"github.com/mural-db/mural/internal/types"
	"github.com/mural-db/mural/mural"
)

func main() {
	eng, err := mural.Open(mural.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Load 6000 multilingual names, phonemes materialized at insert.
	recs := dataset.GenerateNames(dataset.NamesConfig{Records: 6000, Seed: 42})
	eng.MustExec(`CREATE TABLE names (id INT, name UNITEXT)`)
	var rows []string
	for _, r := range recs {
		rows = append(rows, fmt.Sprintf("(%d, unitext('%s', %s))",
			r.ID, strings.ReplaceAll(r.Name.Text, "'", "''"), r.Name.Lang))
		if len(rows) == 500 {
			eng.MustExec(`INSERT INTO names VALUES ` + strings.Join(rows, ","))
			rows = rows[:0]
		}
	}
	if len(rows) > 0 {
		eng.MustExec(`INSERT INTO names VALUES ` + strings.Join(rows, ","))
	}
	eng.MustExec(`ANALYZE names`)

	// Serve the engine and connect a client, as the outside path requires.
	srv := server.New(eng)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	conn, err := client.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	conn.FetchSize = 1 // row-at-a-time, the PL/SQL cursor discipline

	query := recs[0].Roman
	fmt.Printf("query: name LEXEQUAL %q THRESHOLD 3 over %d rows\n\n", query, len(recs))

	// (a) Core: the operator runs inside the engine. Warm once so the
	// comparison measures execution, not first-call planning.
	coreQ := fmt.Sprintf(`SELECT count(*) FROM names WHERE name LEXEQUAL '%s' THRESHOLD 3`, query)
	eng.MustExec(coreQ)
	start := time.Now()
	res := eng.MustExec(coreQ)
	coreDur := time.Since(start)
	fmt.Printf("core (first-class operator): %v matches in %v\n", res.Rows[0][0], coreDur.Round(time.Microsecond))

	// (b) Outside the server: ship every row, evaluate the UDF client-side.
	reg := phonetic.DefaultRegistry()
	start = time.Now()
	matches, st, err := client.PsiScan(conn, "names", "name",
		types.Compose(query, types.LangEnglish), 3, nil, reg)
	if err != nil {
		log.Fatal(err)
	}
	outDur := time.Since(start)
	fmt.Printf("outside-the-server (UDF):    %d matches in %v\n", len(matches), outDur.Round(time.Microsecond))
	fmt.Printf("  rows shipped: %d, cursor round trips: %d\n", st.RowsShipped, st.RoundTrips)

	if int64(len(matches)) != res.Rows[0][0].Int() {
		log.Fatalf("implementations disagree: %d vs %v", len(matches), res.Rows[0][0])
	}
	fmt.Printf("\nanswers agree; core is %.0fx faster (the paper's Table 4 effect)\n",
		outDur.Seconds()/coreDur.Seconds())

	// Batched fetch shows how much of the penalty is round trips alone.
	conn.FetchSize = 256
	start = time.Now()
	matches, st, err = client.PsiScan(conn, "names", "name",
		types.Compose(query, types.LangEnglish), 3, nil, reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outside with 256-row batches: %d matches in %v (%d round trips)\n",
		len(matches), time.Since(start).Round(time.Microsecond), st.RoundTrips)
	fmt.Println("  (batching removes the round-trip share of the penalty; the paper's")
	fmt.Println("   PL/SQL baseline additionally pays interpreted per-call UDF overhead,")
	fmt.Println("   which a compiled client does not reproduce)")
}
