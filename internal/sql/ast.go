// Package sql implements the engine's SQL dialect: a lexer, a
// recursive-descent parser and the statement/expression AST. The dialect
// covers the DDL/DML the paper's experiments need, plus the multilingual
// predicate syntax of Figures 2 and 4:
//
//	expr LEXEQUAL expr [THRESHOLD k] [IN lang, lang, ...]
//	expr SEMEQUAL expr [IN lang, lang, ...]
//
// and a unitext(text, lang) constructor for multilingual literals.
package sql

import (
	"strings"

	"github.com/mural-db/mural/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name (col TYPE, ...).
type CreateTable struct {
	Name    string
	Columns []ColumnDef
}

// ColumnDef declares one column.
type ColumnDef struct {
	Name string
	Kind types.Kind
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// DropIndex is DROP INDEX name.
type DropIndex struct{ Name string }

// IndexKind selects an access method for CREATE INDEX.
type IndexKind int

// Index kinds accepted by CREATE INDEX ... USING.
const (
	IndexBTree IndexKind = iota
	IndexMTree
	IndexMDI
	IndexQGram
)

// String names the index kind as it appears in SQL.
func (k IndexKind) String() string {
	switch k {
	case IndexBTree:
		return "BTREE"
	case IndexMTree:
		return "MTREE"
	case IndexMDI:
		return "MDI"
	case IndexQGram:
		return "QGRAM"
	default:
		return "INDEX?"
	}
}

// CreateIndex is CREATE INDEX name ON table (column) USING kind.
type CreateIndex struct {
	Name   string
	Table  string
	Column string
	Kind   IndexKind
}

// Insert is INSERT INTO table VALUES (...), (...).
type Insert struct {
	Table string
	Rows  [][]Expr
}

// Delete is DELETE FROM table [WHERE pred].
type Delete struct {
	Table string
	Where Expr
}

// Analyze is ANALYZE [table].
type Analyze struct{ Table string }

// Set is SET name = value.
type Set struct {
	Name  string
	Value string
}

// Show is SHOW name.
type Show struct{ Name string }

// Explain wraps a SELECT: EXPLAIN [ANALYZE] SELECT ...
type Explain struct {
	Analyze bool
	Stmt    *Select
}

// TableRef is one FROM-clause table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the effective name (alias if present).
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is one JOIN table ON cond.
type JoinClause struct {
	Table TableRef
	Cond  Expr
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// SelectItem is one projection item; Star marks "*".
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// Select is a SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	OrderBy  []OrderKey
	Limit    int64 // -1 when absent
}

func (*CreateTable) stmt() {}
func (*DropTable) stmt()   {}
func (*DropIndex) stmt()   {}
func (*CreateIndex) stmt() {}
func (*Insert) stmt()      {}
func (*Delete) stmt()      {}
func (*Analyze) stmt()     {}
func (*Set) stmt()         {}
func (*Show) stmt()        {}
func (*Explain) stmt()     {}
func (*Select) stmt()      {}

// Expr is any expression node.
type Expr interface{ expr() }

// ColumnRef references a column, optionally qualified by table/alias.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders the reference.
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Literal is a constant value.
type Literal struct{ Value types.Value }

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Compare is a binary comparison.
type Compare struct {
	Op          CmpOp
	Left, Right Expr
}

// BoolOp is a logical connective.
type BoolOp int

// Logical connectives.
const (
	OpAnd BoolOp = iota
	OpOr
)

// Logical is AND/OR of two predicates.
type Logical struct {
	Op          BoolOp
	Left, Right Expr
}

// Not negates a predicate.
type Not struct{ Inner Expr }

// Like is the SQL LIKE pattern predicate ("%" any run, "_" any rune),
// applied to the Text component of UNITEXT values per §3.2.1.
type Like struct {
	Left    Expr
	Pattern Expr
}

// LexEqual is the Ψ predicate: Left LEXEQUAL Right [THRESHOLD k] [IN langs].
// Threshold < 0 means "use the session setting" (the paper's workaround for
// PostgreSQL's binary-only operator facility, §4.2).
type LexEqual struct {
	Left, Right Expr
	Threshold   int
	Langs       []types.LangID
}

// SemEqual is the Ω predicate: Left SEMEQUAL Right [IN langs].
type SemEqual struct {
	Left, Right Expr
	Langs       []types.LangID
}

// FuncKind identifies an aggregate or scalar function.
type FuncKind int

// Supported functions.
const (
	FuncCount FuncKind = iota // COUNT(*) when Arg == nil
	FuncSum
	FuncAvg
	FuncMin
	FuncMax
	FuncUniText // unitext(text, lang) constructor (the ⊕ operator)
	FuncText    // text(u) — ⊖ projection to the Text component
	FuncLang    // lang(u) — ⊖ projection to the language name
	FuncPhoneme // phoneme(u) — materialized phoneme string
	FuncCustom  // an operator registered through the engine's registry
)

// IsAggregate reports whether the function aggregates rows.
func (k FuncKind) IsAggregate() bool {
	switch k {
	case FuncCount, FuncSum, FuncAvg, FuncMin, FuncMax:
		return true
	}
	return false
}

// String names the function.
func (k FuncKind) String() string {
	switch k {
	case FuncCount:
		return "count"
	case FuncSum:
		return "sum"
	case FuncAvg:
		return "avg"
	case FuncMin:
		return "min"
	case FuncMax:
		return "max"
	case FuncUniText:
		return "unitext"
	case FuncText:
		return "text"
	case FuncLang:
		return "lang"
	case FuncPhoneme:
		return "phoneme"
	case FuncCustom:
		return "custom"
	default:
		return "func?"
	}
}

// FuncCall is a function application. For COUNT(*), Args is nil and Star is
// true. Kind FuncCustom carries the registered operator's name in Name —
// the engine-side analog of PostgreSQL's operator addition facility the
// paper used (§4.2).
type FuncCall struct {
	Kind FuncKind
	Name string // FuncCustom only
	Args []Expr
	Star bool
}

func (*ColumnRef) expr() {}
func (*Literal) expr()   {}
func (*Compare) expr()   {}
func (*Logical) expr()   {}
func (*Not) expr()       {}
func (*Like) expr()      {}
func (*LexEqual) expr()  {}
func (*SemEqual) expr()  {}
func (*FuncCall) expr()  {}

// ExprString renders an expression for EXPLAIN output.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *ColumnRef:
		return x.String()
	case *Literal:
		if x.Value.Kind() == types.KindText {
			return "'" + x.Value.Text() + "'"
		}
		return x.Value.String()
	case *Compare:
		return ExprString(x.Left) + " " + x.Op.String() + " " + ExprString(x.Right)
	case *Logical:
		op := " AND "
		if x.Op == OpOr {
			op = " OR "
		}
		return "(" + ExprString(x.Left) + op + ExprString(x.Right) + ")"
	case *Not:
		return "NOT (" + ExprString(x.Inner) + ")"
	case *Like:
		return ExprString(x.Left) + " LIKE " + ExprString(x.Pattern)
	case *LexEqual:
		s := ExprString(x.Left) + " LEXEQUAL " + ExprString(x.Right)
		if x.Threshold >= 0 {
			s += " THRESHOLD " + itoa(x.Threshold)
		}
		if len(x.Langs) > 0 {
			s += " IN " + langList(x.Langs)
		}
		return s
	case *SemEqual:
		s := ExprString(x.Left) + " SEMEQUAL " + ExprString(x.Right)
		if len(x.Langs) > 0 {
			s += " IN " + langList(x.Langs)
		}
		return s
	case *FuncCall:
		fname := x.Kind.String()
		if x.Kind == FuncCustom {
			fname = x.Name
		}
		if x.Star {
			return fname + "(*)"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return fname + "(" + strings.Join(args, ", ") + ")"
	default:
		return "<expr>"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func langList(langs []types.LangID) string {
	parts := make([]string, len(langs))
	for i, l := range langs {
		parts[i] = l.String()
	}
	return strings.Join(parts, ", ")
}
