package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/mural-db/mural/internal/plan"
	"github.com/mural-db/mural/internal/types"
)

// Query cancellation and resource governance. The paper pushes the expensive
// multilingual operators (Ψ edit-distance matching, Ω closure probes) into
// the engine, so a single bad threshold can turn one SELECT into minutes of
// CPU; this file gives every governed execution three ways to stop it:
//
//   - cooperative cancellation: the operator tree checks a context on an
//     amortized schedule (every cancelInterval rows), so cancel/deadline
//     fires are observed within a bounded amount of work per pipeline;
//   - a per-query memory ceiling: operators that materialize (hash-join
//     build sides, sorts, aggregates, Gather merge buffers, Ω closures)
//     charge an accountant before holding rows;
//   - typed terminal errors, so every layer above (engine, server, wire,
//     client) can classify the failure without string matching.
//
// A nil *Resources disables all of it: ungoverned runs build the exact
// iterator tree they always did and pay nothing on the row path.

// Typed terminal errors for governed executions (check with errors.Is).
var (
	// ErrCanceled reports a query stopped by explicit cancellation.
	ErrCanceled = errors.New("exec: query canceled")
	// ErrQueryTimeout reports a query stopped by its deadline.
	ErrQueryTimeout = errors.New("exec: query timeout")
	// ErrMemoryLimit reports a query that exceeded its memory budget.
	ErrMemoryLimit = errors.New("exec: query memory limit exceeded")
)

// cancelInterval is how many row-steps pass between cancellation checks: a
// power of two so the check is one mask on the hot path. ~1024 rows keeps
// the observed overhead under the noise floor while bounding the response
// to a cancel by about a millisecond of row work.
const cancelInterval = 1024

// Resources is the per-query governance state: the cancellation context and
// the memory accountant. One Resources is shared by every evaluator of a
// query (Gather workers included), so all methods are safe for concurrent
// use, and every method tolerates a nil receiver (ungoverned execution).
type Resources struct {
	ctx    context.Context
	maxMem int64
	mem    atomic.Int64
	peak   atomic.Int64
}

// NewResources builds governance state for one query. A nil ctx means
// "cancellation never fires"; maxMem <= 0 disables the memory ceiling (the
// accountant still tracks peak usage for EXPLAIN ANALYZE).
func NewResources(ctx context.Context, maxMem int64) *Resources {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Resources{ctx: ctx, maxMem: maxMem}
}

// Context returns the query's context (Background for nil Resources).
func (r *Resources) Context() context.Context {
	if r == nil {
		return context.Background()
	}
	return r.ctx
}

// Err reports the typed terminal error once the query's context is done,
// nil before that (and always nil for a nil receiver).
func (r *Resources) Err() error {
	if r == nil {
		return nil
	}
	err := r.ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return ErrQueryTimeout
	default:
		return ErrCanceled
	}
}

// Grow charges n bytes to the query, failing with ErrMemoryLimit when the
// ceiling is crossed. The charge stays recorded even on failure so EXPLAIN
// ANALYZE's peak reflects what the query tried to hold; the failed operator
// releases what it accounted when it closes.
func (r *Resources) Grow(n int64) error {
	if r == nil || n == 0 {
		return nil
	}
	cur := r.mem.Add(n)
	for {
		p := r.peak.Load()
		if cur <= p || r.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	if r.maxMem > 0 && cur > r.maxMem {
		return fmt.Errorf("%w (query holds %d bytes, limit %d)", ErrMemoryLimit, cur, r.maxMem)
	}
	return nil
}

// Release returns n accounted bytes.
func (r *Resources) Release(n int64) {
	if r != nil && n != 0 {
		r.mem.Add(-n)
	}
}

// MemBytes reports the bytes currently accounted to the query.
func (r *Resources) MemBytes() int64 {
	if r == nil {
		return 0
	}
	return r.mem.Load()
}

// PeakBytes reports the high-water mark of accounted bytes.
func (r *Resources) PeakBytes() int64 {
	if r == nil {
		return 0
	}
	return r.peak.Load()
}

// tick is the amortized cancellation checkpoint: every iterator row-loop
// calls it, and one call in cancelInterval consults the context. Nil-safe on
// both the evaluator and its Resources so ungoverned runs pay only the
// counter increment (and the test-only nil-evaluator paths pay nothing).
func (ev *evaluator) tick() error {
	if ev == nil || ev.res == nil {
		return nil
	}
	ev.ticks++
	if ev.ticks&(cancelInterval-1) != 0 {
		return nil
	}
	return ev.res.Err()
}

// grow charges bytes to the query's accountant (no-op when ungoverned).
func (ev *evaluator) grow(n int64) error {
	if ev == nil || ev.res == nil {
		return nil
	}
	return ev.res.Grow(n)
}

// release returns accounted bytes (no-op when ungoverned).
func (ev *evaluator) release(n int64) {
	if ev != nil && ev.res != nil {
		ev.res.Release(n)
	}
}

// tupleBytes estimates a materialized tuple's resident footprint: slice
// header plus per-value struct and string payloads.
func tupleBytes(t types.Tuple) int64 {
	n := int64(24)
	for _, v := range t {
		n += int64(v.MemBytes())
	}
	return n
}

// tuplesBytes sums tupleBytes over a batch.
func tuplesBytes(rows []types.Tuple) int64 {
	var n int64
	for _, t := range rows {
		n += tupleBytes(t)
	}
	return n
}

// govIter wraps a governed scan source: Next checks the cancellation
// checkpoint, Close releases whatever the source had accounted (index scans
// charge their fetched result set up front).
type govIter struct {
	child TupleIter
	ev    *evaluator
	bytes int64
}

func (g *govIter) Next() (types.Tuple, bool, error) {
	if err := g.ev.tick(); err != nil {
		return nil, false, err
	}
	return g.child.Next()
}

func (g *govIter) Close() error {
	g.ev.release(g.bytes)
	g.bytes = 0
	return g.child.Close()
}

// unwrapGov strips a pure-checkpoint govIter (one carrying no accounted
// bytes): an operator that ticks on every row it pulls makes the wrapper's
// per-row indirection redundant. Wrappers holding an up-front charge (index
// scans) keep their Close-side release duty and are never stripped, and
// stats-collected runs wrap operators in instrumentation so the govIter is
// not the direct child there.
func unwrapGov(it TupleIter) TupleIter {
	if g, ok := it.(*govIter); ok && g.bytes == 0 {
		return g.child
	}
	return it
}

// RunGoverned instantiates the operator tree under per-query governance:
// res carries the cancellation context and memory accountant that every
// checkpointed loop consults. A nil res makes this identical to
// RunWithStats; a nil es additionally skips per-operator instrumentation.
// Execution is row-at-a-time; RunTuned with DefaultRunOptions enables the
// vectorized engine.
func RunGoverned(env Env, node *plan.Node, es *ExecStats, res *Resources) (*Cursor, error) {
	return RunTuned(env, node, es, res, RunOptions{})
}

// RunOptions selects execution-engine strategies for one query. The zero
// value is the classic row-at-a-time engine.
type RunOptions struct {
	// Vectorize compiles eligible subtrees (scans, filters, projections)
	// into batch-at-a-time pipelines exchanging pooled ~BatchRows vectors.
	Vectorize bool
	// Fuse additionally compiles Ψ/Ω-filter-over-scan pairs into single
	// page-at-a-time kernels (implies nothing unless Vectorize is set).
	Fuse bool
	// Pool, when non-nil, supplies the query's batch pool; tests inject one
	// to assert InFlight returns to zero. Nil allocates a fresh pool.
	Pool *BatchPool
}

// DefaultRunOptions is the engine's production configuration: vectorized
// with fusion.
func DefaultRunOptions() RunOptions {
	return RunOptions{Vectorize: true, Fuse: true}
}

// RunTuned is RunGoverned with explicit engine strategy selection.
func RunTuned(env Env, node *plan.Node, es *ExecStats, res *Resources, opts RunOptions) (*Cursor, error) {
	if err := res.Err(); err != nil {
		return nil, err
	}
	stats := &RunStats{}
	ev := &evaluator{env: env, stats: stats, collector: es, res: res}
	if opts.Vectorize {
		ev.vec = true
		ev.fuse = opts.Fuse
		ev.pool = opts.Pool
		if ev.pool == nil {
			ev.pool = NewBatchPool()
		}
	}
	it, err := build(env, ev, node)
	if err != nil {
		return nil, err
	}
	cols := node.ColNames
	if cols == nil {
		for _, ci := range node.Schema() {
			cols = append(cols, ci.Name)
		}
	}
	return &Cursor{Cols: cols, Stats: stats, it: it}, nil
}
