package phonetic

import (
	"strings"

	"github.com/mural-db/mural/internal/types"
)

// Transliteration renders romanized names into native scripts. The dataset
// generator uses it to build the cross-script homophone clusters that the
// paper's pre-tagged multilingual names dataset contained: the same name
// rendered in Latin, Devanagari, Tamil and Kannada scripts converges to
// nearly identical phoneme strings under the package's converters, which is
// the property the Ψ workload depends on.

// segment is one phonetic unit of a romanized word.
type segment struct {
	key     string
	isVowel bool
}

// romanConsonants and romanVowels order matters only through greedy
// longest-match; the maps are keyed by the romanization digraphs in common
// Indian-English transliteration practice.
var romanConsonantKeys = map[string]bool{
	"chh": true, "kh": true, "gh": true, "ch": true, "jh": true,
	"th": true, "dh": true, "ph": true, "bh": true, "sh": true,
	"k": true, "g": true, "c": true, "j": true, "t": true, "d": true,
	"n": true, "p": true, "b": true, "m": true, "y": true, "r": true,
	"l": true, "v": true, "w": true, "s": true, "h": true, "z": true,
	"f": true, "x": true, "q": true,
}

var romanVowelKeys = map[string]bool{
	"aa": true, "ai": true, "au": true, "ee": true, "ei": true,
	"ii": true, "oo": true, "ou": true, "uu": true,
	"a": true, "e": true, "i": true, "o": true, "u": true,
}

// segmentRoman splits a lowercase romanized word into consonant and vowel
// segments, greedy longest match first. Unknown runes are skipped.
func segmentRoman(word string) []segment {
	word = strings.ToLower(word)
	runes := []rune(word)
	var segs []segment
	for i := 0; i < len(runes); {
		matched := false
		for l := 3; l >= 1; l-- {
			if i+l > len(runes) {
				continue
			}
			key := string(runes[i : i+l])
			if romanConsonantKeys[key] {
				segs = append(segs, segment{key: key, isVowel: false})
				i += l
				matched = true
				break
			}
			if romanVowelKeys[key] {
				segs = append(segs, segment{key: key, isVowel: true})
				i += l
				matched = true
				break
			}
		}
		if !matched {
			i++
		}
	}
	return segs
}

// scriptTables describes how one abugida renders romanized segments.
type scriptTables struct {
	lang        types.LangID
	consonants  map[string]string // roman consonant key -> script letter(s)
	independent map[string]string // roman vowel key -> independent vowel letter
	matra       map[string]string // roman vowel key -> dependent sign ("" = inherent)
	virama      string
	finalVirama bool // write virama on a word-final consonant (Tamil pulli)
}

// Transliterate renders a romanized name into the script of lang. English
// and French keep the Latin spelling; Hindi, Tamil and Kannada are rendered
// through their abugida tables. Unknown languages return the input
// unchanged.
func Transliterate(roman string, lang types.LangID) string {
	switch lang {
	case types.LangHindi:
		return renderWords(roman, hindiTables)
	case types.LangTamil:
		return renderWords(roman, tamilTables)
	case types.LangKannada:
		return renderWords(roman, kannadaTables)
	default:
		return roman
	}
}

func renderWords(roman string, t *scriptTables) string {
	words := strings.Fields(roman)
	out := make([]string, len(words))
	for i, w := range words {
		out[i] = renderWord(w, t)
	}
	return strings.Join(out, " ")
}

func renderWord(word string, t *scriptTables) string {
	segs := segmentRoman(word)
	var b strings.Builder
	for i, s := range segs {
		if s.isVowel {
			if i == 0 || segs[i-1].isVowel {
				b.WriteString(t.independent[s.key])
			} else {
				b.WriteString(t.matra[s.key])
			}
			continue
		}
		letter, ok := t.consonants[s.key]
		if !ok {
			continue
		}
		b.WriteString(letter)
		// Conjunct or final consonant: suppress the inherent vowel.
		if i+1 >= len(segs) {
			if t.finalVirama {
				b.WriteString(t.virama)
			}
		} else if !segs[i+1].isVowel {
			b.WriteString(t.virama)
		}
	}
	return b.String()
}

var hindiTables = &scriptTables{
	lang: types.LangHindi,
	consonants: map[string]string{
		"k": "क", "kh": "ख", "g": "ग", "gh": "घ",
		"ch": "च", "chh": "छ", "j": "ज", "jh": "झ",
		"t": "त", "th": "थ", "d": "द", "dh": "ध", "n": "न",
		"p": "प", "ph": "फ", "b": "ब", "bh": "भ", "m": "म",
		"y": "य", "r": "र", "l": "ल", "v": "व", "w": "व",
		"s": "स", "sh": "श", "h": "ह", "z": "ज़", "f": "फ़",
		"c": "क", "q": "क़", "x": "क्स",
	},
	independent: map[string]string{
		"a": "अ", "aa": "आ", "i": "इ", "ii": "ई", "ee": "ई",
		"u": "उ", "uu": "ऊ", "oo": "ऊ", "e": "ए", "ei": "ए",
		"ai": "ऐ", "o": "ओ", "au": "औ", "ou": "औ",
	},
	matra: map[string]string{
		"a": "", "aa": "ा", "i": "ि", "ii": "ी", "ee": "ी",
		"u": "ु", "uu": "ू", "oo": "ू", "e": "े", "ei": "े",
		"ai": "ै", "o": "ो", "au": "ौ", "ou": "ौ",
	},
	virama:      "्",
	finalVirama: false,
}

var tamilTables = &scriptTables{
	lang: types.LangTamil,
	consonants: map[string]string{
		"k": "க", "kh": "க", "g": "க", "gh": "க",
		"ch": "ச", "chh": "ச", "j": "ஜ", "jh": "ஜ",
		"t": "த", "th": "த", "d": "த", "dh": "த", "n": "ந",
		"p": "ப", "ph": "ப", "b": "ப", "bh": "ப", "m": "ம",
		"y": "ய", "r": "ர", "l": "ல", "v": "வ", "w": "வ",
		"s": "ஸ", "sh": "ஷ", "h": "ஹ", "z": "ஜ", "f": "ப",
		"c": "க", "q": "க", "x": "க்ஸ",
	},
	independent: map[string]string{
		"a": "அ", "aa": "ஆ", "i": "இ", "ii": "ஈ", "ee": "ஈ",
		"u": "உ", "uu": "ஊ", "oo": "ஊ", "e": "எ", "ei": "ஏ",
		"ai": "ஐ", "o": "ஒ", "au": "ஔ", "ou": "ஔ",
	},
	matra: map[string]string{
		"a": "", "aa": "ா", "i": "ி", "ii": "ீ", "ee": "ீ",
		"u": "ு", "uu": "ூ", "oo": "ூ", "e": "ெ", "ei": "ே",
		"ai": "ை", "o": "ொ", "au": "ௌ", "ou": "ௌ",
	},
	virama:      "்",
	finalVirama: true,
}

var kannadaTables = &scriptTables{
	lang: types.LangKannada,
	consonants: map[string]string{
		"k": "ಕ", "kh": "ಖ", "g": "ಗ", "gh": "ಘ",
		"ch": "ಚ", "chh": "ಛ", "j": "ಜ", "jh": "ಝ",
		"t": "ತ", "th": "ಥ", "d": "ದ", "dh": "ಧ", "n": "ನ",
		"p": "ಪ", "ph": "ಫ", "b": "ಬ", "bh": "ಭ", "m": "ಮ",
		"y": "ಯ", "r": "ರ", "l": "ಲ", "v": "ವ", "w": "ವ",
		"s": "ಸ", "sh": "ಶ", "h": "ಹ", "z": "ಜ", "f": "ಫ",
		"c": "ಕ", "q": "ಕ", "x": "ಕ್ಸ",
	},
	independent: map[string]string{
		"a": "ಅ", "aa": "ಆ", "i": "ಇ", "ii": "ಈ", "ee": "ಈ",
		"u": "ಉ", "uu": "ಊ", "oo": "ಊ", "e": "ಎ", "ei": "ಏ",
		"ai": "ಐ", "o": "ಒ", "au": "ಔ", "ou": "ಔ",
	},
	matra: map[string]string{
		"a": "", "aa": "ಾ", "i": "ಿ", "ii": "ೀ", "ee": "ೀ",
		"u": "ು", "uu": "ೂ", "oo": "ೂ", "e": "ೆ", "ei": "ೇ",
		"ai": "ೈ", "o": "ೊ", "au": "ೌ", "ou": "ೌ",
	},
	virama:      "್",
	finalVirama: true,
}
