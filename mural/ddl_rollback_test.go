package mural

import (
	"errors"
	"sync/atomic"
	"testing"

	"github.com/mural-db/mural/internal/storage"
)

// failSyncLog makes WAL syncs fail on demand, so a DDL commit can be forced
// to fail after the in-memory catalog change was already applied.
type failSyncLog struct {
	storage.LogFile
	fail *atomic.Bool
}

func (f *failSyncLog) Sync() error {
	if f.fail.Load() {
		return errors.New("injected sync failure")
	}
	return f.LogFile.Sync()
}

// A DROP TABLE whose WAL commit fails must report the error and restore the
// table (and its indexes) in the catalog — the commit-failure path used to
// be dead code behind a shadowed err.
func TestDropTableRollsBackOnCommitFailure(t *testing.T) {
	var fail atomic.Bool
	e, err := Open(Config{
		Dir: t.TempDir(),
		WALWrap: func(f storage.LogFile) storage.LogFile {
			return &failSyncLog{LogFile: f, fail: &fail}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()

	mustExec := func(q string) {
		t.Helper()
		if _, err := e.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec(`CREATE TABLE t (id INT, name TEXT)`)
	mustExec(`INSERT INTO t VALUES (1, 'nehru')`)

	fail.Store(true)
	if _, err := e.Exec(`DROP TABLE t`); err == nil {
		t.Fatal("DROP TABLE succeeded although the WAL commit failed")
	}
	fail.Store(false)

	r, err := e.Exec(`SELECT id, name FROM t`)
	if err != nil {
		t.Fatalf("table vanished after failed DROP: %v", err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("expected the surviving row, got %d rows", len(r.Rows))
	}
}
