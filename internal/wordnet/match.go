package wordnet

import (
	"github.com/mural-db/mural/internal/types"
)

// Matcher implements the Ω (SemEQUAL) predicate over a Net: Ω(a, b) holds
// when some synset of the LHS word is inside the transitive closure of some
// synset of the RHS word (the paper's Figure 5 algorithm), with the LHS
// language optionally restricted to a user-specified output set (the
// "IN English, French, Tamil" clause of Figure 4).
type Matcher struct {
	net   *Net
	cache *ClosureCache
}

// NewMatcher builds a Matcher with a fresh closure cache.
func NewMatcher(net *Net) *Matcher {
	return &Matcher{net: net, cache: NewClosureCache(net)}
}

// Net returns the underlying taxonomy.
func (m *Matcher) Net() *Net { return m.net }

// Cache exposes the closure cache (the executor reports its hit statistics
// in EXPLAIN ANALYZE output).
func (m *Matcher) Cache() *ClosureCache { return m.cache }

// Match evaluates Ω(lhs, rhs) with an optional language filter on the LHS.
// An empty langs slice admits every language.
func (m *Matcher) Match(lhs, rhs types.UniText, langs []types.LangID) bool {
	if len(langs) > 0 {
		ok := false
		for _, l := range langs {
			if lhs.Lang == l {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	lhsSyns := m.net.SynsetsOf(lhs.Lang, lhs.Text)
	if len(lhsSyns) == 0 {
		return false
	}
	rhsSyns := m.net.SynsetsOf(rhs.Lang, rhs.Text)
	for _, root := range rhsSyns {
		closure := m.cache.Closure(root)
		for _, s := range lhsSyns {
			if _, ok := closure[s]; ok {
				return true
			}
		}
	}
	return false
}

// Meter is the memory accountant a governed query passes to MatchMeter:
// Grow charges bytes against the query's budget and fails when it is
// exhausted (exec.Resources implements it).
type Meter interface {
	Grow(n int64) error
}

// closureEntryBytes approximates one member of a materialized closure set
// (map bucket share plus the SynsetID key).
const closureEntryBytes = 16

// MatchMeter is Match with per-query memory governance: every closure this
// probe materializes fresh is charged to the meter, and a budget failure
// aborts the probe. Cache hits charge nothing — the paper's §4.3 hash tables
// are an engine-lifetime structure, so only the query that computes a
// closure pays for it.
func (m *Matcher) MatchMeter(lhs, rhs types.UniText, langs []types.LangID, meter Meter) (bool, error) {
	if len(langs) > 0 {
		ok := false
		for _, l := range langs {
			if lhs.Lang == l {
				ok = true
				break
			}
		}
		if !ok {
			return false, nil
		}
	}
	lhsSyns := m.net.SynsetsOf(lhs.Lang, lhs.Text)
	if len(lhsSyns) == 0 {
		return false, nil
	}
	rhsSyns := m.net.SynsetsOf(rhs.Lang, rhs.Text)
	for _, root := range rhsSyns {
		closure, computed := m.cache.ClosureComputed(root)
		if computed {
			if err := meter.Grow(int64(len(closure)) * closureEntryBytes); err != nil {
				return false, err
			}
		}
		for _, s := range lhsSyns {
			if _, ok := closure[s]; ok {
				return true, nil
			}
		}
	}
	return false, nil
}

// MatchNoCache evaluates Ω without memoization, walking parent pointers:
// the unamortized per-pair evaluation used to quantify the closure cache's
// benefit in the ablation benchmark (E7).
func (m *Matcher) MatchNoCache(lhs, rhs types.UniText, langs []types.LangID) bool {
	if len(langs) > 0 {
		ok := false
		for _, l := range langs {
			if lhs.Lang == l {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	lhsSyns := m.net.SynsetsOf(lhs.Lang, lhs.Text)
	rhsSyns := m.net.SynsetsOf(rhs.Lang, rhs.Text)
	for _, root := range rhsSyns {
		closure := m.net.Closure(root) // recomputed every call
		for _, s := range lhsSyns {
			if _, ok := closure[s]; ok {
				return true
			}
		}
	}
	return false
}
