// Pooled-batch golden cases for the membalance analyzer. The local types
// mirror exec's batch pool: getBatch/Get draw a vector that is owed back to
// the pool, putBatch/Put return it, and ownership transfers by returning the
// batch to the caller (the BatchIter contract), sending it on a channel (the
// Gather exchange), or storing it into longer-lived state. retire alone is
// not a release: it drops the memory charge but strands the pool slot.
package membalance

type Batch struct {
	Rows  []int
	bytes int64
}

func (b *Batch) retire() { b.bytes = 0 }

type BatchPool struct{ free []*Batch }

func (p *BatchPool) Get() *Batch {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return &Batch{}
}

func (p *BatchPool) Put(b *Batch) {
	b.retire()
	p.free = append(p.free, b)
}

type evaluator struct{ pool *BatchPool }

func (ev *evaluator) getBatch() *Batch { return ev.pool.Get() }

func (ev *evaluator) putBatch(b *Batch) { ev.pool.Put(b) }

// ---- positives ----

// batchLeakOnError forgets the pool on the fill-error path: a filler only
// borrows the batch, so the early return still owes a putBatch.
func batchLeakOnError(ev *evaluator, fill func(*Batch) error) (*Batch, error) {
	b := ev.getBatch() // want `pooled batch acquired by getBatch is not released on every path`
	if err := fill(b); err != nil {
		return nil, err
	}
	return b, nil
}

// batchLeakAtEnd fills a batch and drops it on the floor.
func batchLeakAtEnd(ev *evaluator) {
	b := ev.getBatch() // want `pooled batch acquired by getBatch is not released on every path`
	b.Rows = append(b.Rows, 1)
}

// batchDiscard throws the handle away outright.
func batchDiscard(ev *evaluator) {
	_ = ev.getBatch() // want `result of getBatch \(a pooled batch\) is discarded without release`
}

// retireOnly settles the accountant but never returns the vector.
func retireOnly(ev *evaluator) {
	b := ev.getBatch() // want `pooled batch acquired by getBatch is not released on every path`
	b.retire()
}

// ---- negatives ----

// batchBalanced recycles on the error and empty paths and hands ownership to
// the caller on success — the NextBatch shape.
func batchBalanced(ev *evaluator, fill func(*Batch) error) (*Batch, error) {
	b := ev.getBatch()
	if err := fill(b); err != nil {
		ev.putBatch(b)
		return nil, err
	}
	if len(b.Rows) == 0 {
		ev.putBatch(b)
		return nil, nil
	}
	return b, nil
}

// batchToChannel hands the batch to the exchange consumer.
func batchToChannel(ev *evaluator, out chan *Batch) {
	b := ev.getBatch()
	out <- b
}

// envelope mirrors gatherBatch: a composite literal carrying the vector.
type envelope struct{ b *Batch }

func batchInEnvelope(ev *evaluator) envelope {
	b := ev.getBatch()
	return envelope{b: b}
}

// cursor mirrors batchRowIter: stashing the batch in a field moves the duty
// to the owner's Close.
type cursor struct{ cur *Batch }

func (c *cursor) stash(ev *evaluator) {
	b := ev.getBatch()
	c.cur = b
}

// poolDirect balances through the pool face itself.
func poolDirect(p *BatchPool, use func(*Batch)) {
	b := p.Get()
	use(b)
	p.Put(b)
}

// deferredPut covers panicky consumers with a deferred return.
func deferredPut(ev *evaluator, use func(*Batch)) {
	b := ev.getBatch()
	defer ev.putBatch(b)
	use(b)
}

// batchExempt documents an intentional strand.
func batchExempt(ev *evaluator) {
	b := ev.getBatch() //lint:batch-exempt handed to the test harness, which drains the pool
	_ = b
}
