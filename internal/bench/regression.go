package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/mural-db/mural/internal/wordnet"
	"github.com/mural-db/mural/mural"
)

// RegressionResult reports E5: timings of a standard (non-multilingual)
// query suite on a plain schema versus the same schema carrying the
// multilingual additions (a UNITEXT column with materialized phonemes plus
// M-Tree/MDI indexes). The paper "found no statistically significant
// degradation" (§5.1); Ratio should sit near 1.
type RegressionResult struct {
	PlainSec      float64
	MultiSec      float64
	Ratio         float64
	QueriesPerRun int
}

// RegressionConfig sizes the check.
type RegressionConfig struct {
	Rows int
	Runs int
	Seed int64
}

// RunRegression measures the standard-path overhead of the multilingual
// additions.
func RunRegression(cfg RegressionConfig) (*RegressionResult, error) {
	if cfg.Rows <= 0 {
		cfg.Rows = 5000
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 3
	}

	suite := []string{
		`SELECT count(*) FROM t WHERE a < %ROWS2%`,
		`SELECT sum(b), avg(b) FROM t`,
		`SELECT count(*) FROM t WHERE a = 42`,
		`SELECT a FROM t WHERE a >= %ROWS2% ORDER BY a DESC LIMIT 10`,
		`SELECT count(*) FROM t x, u y WHERE x.a = y.tid`,
		`SELECT c, count(*) FROM t GROUP BY c ORDER BY c LIMIT 5`,
	}

	// Both engines carry identical t/u tables and run the identical suite;
	// the "multilingual" engine additionally holds a populated UNITEXT
	// table with M-Tree and MDI indexes plus a pinned taxonomy, so any
	// slowdown on the standard tables would be contention from the
	// multilingual additions — the paper's regression question.
	build := func(multilingual bool) (*mural.Engine, error) {
		cfg2 := mural.Config{}
		if multilingual {
			cfg2.WordNet = wordnet.Generate(wordnet.Config{Synsets: 5000, Seed: cfg.Seed})
		}
		eng, err := mural.Open(cfg2)
		if err != nil {
			return nil, err
		}
		for _, ddl := range []string{
			`CREATE TABLE t (a INT, b FLOAT, c TEXT)`,
			`CREATE TABLE u (uid INT, tid INT)`,
		} {
			if _, err := eng.Exec(ddl); err != nil {
				_ = eng.Close()
				return nil, err
			}
		}
		execQ := func(q string) error { _, err := eng.Exec(q); return err }
		var rows, urows []string
		for i := 0; i < cfg.Rows; i++ {
			rows = append(rows, fmt.Sprintf("(%d, %d.5, 'c%d')", i, i%97, i%7))
			if i%5 == 0 {
				urows = append(urows, fmt.Sprintf("(%d, %d)", i, i))
			}
		}
		if err := batchInsert("t", rows, execQ); err != nil {
			_ = eng.Close()
			return nil, err
		}
		if err := batchInsert("u", urows, execQ); err != nil {
			_ = eng.Close()
			return nil, err
		}
		if multilingual {
			if _, err := eng.Exec(`CREATE TABLE names (id INT, name UNITEXT)`); err != nil {
				_ = eng.Close()
				return nil, err
			}
			var nrows []string
			for i := 0; i < cfg.Rows/2; i++ {
				nrows = append(nrows, fmt.Sprintf("(%d, unitext('name%d', english))", i, i%50))
			}
			if err := batchInsert("names", nrows, execQ); err != nil {
				_ = eng.Close()
				return nil, err
			}
			for _, q := range []string{
				`CREATE INDEX idx_n_mtree ON names (name) USING MTREE`,
				`CREATE INDEX idx_n_mdi ON names (name) USING MDI`,
			} {
				if _, err := eng.Exec(q); err != nil {
					_ = eng.Close()
					return nil, err
				}
			}
		}
		if _, err := eng.Exec(`ANALYZE`); err != nil {
			_ = eng.Close()
			return nil, err
		}
		return eng, nil
	}

	run := func(eng *mural.Engine) (float64, error) {
		half := fmt.Sprintf("%d", cfg.Rows/2)
		// Warm.
		for _, q := range suite {
			if _, err := eng.Exec(strings.ReplaceAll(q, "%ROWS2%", half)); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for r := 0; r < cfg.Runs; r++ {
			for _, q := range suite {
				if _, err := eng.Exec(strings.ReplaceAll(q, "%ROWS2%", half)); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(start).Seconds() / float64(cfg.Runs), nil
	}

	plainEng, err := build(false)
	if err != nil {
		return nil, err
	}
	plainSec, err := run(plainEng)
	_ = plainEng.Close()
	if err != nil {
		return nil, err
	}
	multiEng, err := build(true)
	if err != nil {
		return nil, err
	}
	multiSec, err := run(multiEng)
	_ = multiEng.Close()
	if err != nil {
		return nil, err
	}
	return &RegressionResult{
		PlainSec:      plainSec,
		MultiSec:      multiSec,
		Ratio:         multiSec / plainSec,
		QueriesPerRun: len(suite),
	}, nil
}
