package mural

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/mural-db/mural/internal/types"
)

// TestDeleteIndexFailureLeavesConsistentState pins the DELETE maintenance
// ordering: index entries are removed before the heap row, and a failed
// index delete re-inserts the entries already removed for that row. The old
// order (heap first, indexes after) relied on WAL rollback to undo the heap
// delete — a no-op when the engine runs without a WAL — leaving index
// entries dangling on a tombstoned RID.
func TestDeleteIndexFailureLeavesConsistentState(t *testing.T) {
	e, err := Open(Config{}) // no Dir: wal == nil, rollbackBatch cannot undo
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	mustExec := func(q string) {
		t.Helper()
		if _, err := e.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec(`CREATE TABLE t (id INT, name UNITEXT)`)
	var rows []string
	for i := 0; i < 20; i++ {
		rows = append(rows, fmt.Sprintf("(%d, unitext('%s', english))", i, syntheticName(i)))
	}
	mustExec(`INSERT INTO t VALUES ` + strings.Join(rows, ","))
	mustExec(`CREATE INDEX ix_bt ON t (id) USING BTREE`)
	mustExec(`CREATE INDEX ix_mt ON t (name) USING MTREE`)

	// Fail the M-Tree delete: the B-tree (earlier in index order) will have
	// removed its entry by then, so the compensation path must restore it.
	injected := errors.New("injected index-delete failure")
	e.failIndexDelete = func(index string) error {
		if index == "ix_mt" {
			return injected
		}
		return nil
	}
	if _, err := e.Exec(`DELETE FROM t WHERE id = 5`); !errors.Is(err, injected) {
		t.Fatalf("DELETE with failing index maintenance: got %v, want injected error", err)
	}
	e.failIndexDelete = nil

	// Heap row must still be there (old order tombstoned it first).
	res, err := e.Exec(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].Int(); n != 20 {
		t.Fatalf("rows after failed DELETE = %d, want 20 (heap mutated before indexes)", n)
	}
	// B-tree entry must have been re-inserted by the compensation.
	key := types.KeyOf(types.NewInt(5))
	rids, _, err := e.IndexSearch("ix_bt", key, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 1 {
		t.Fatalf("btree entries for id=5 after failed DELETE = %d, want 1 (compensation missing)", len(rids))
	}
	// The restored entry must point at a live heap row.
	if _, err := e.FetchRIDs("t", rids); err != nil {
		t.Fatalf("btree entry dangles after compensation: %v", err)
	}

	// With the fault cleared the same DELETE succeeds and removes the row
	// from the heap and every index.
	res, err = e.Exec(`DELETE FROM t WHERE id = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("retry affected %d rows, want 1", res.RowsAffected)
	}
	if rids, _, err = e.IndexSearch("ix_bt", key, key); err != nil || len(rids) != 0 {
		t.Fatalf("btree entries for id=5 after retry = %d (err %v), want 0", len(rids), err)
	}
	res, err = e.Exec(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].Int(); n != 19 {
		t.Fatalf("rows after retry = %d, want 19", n)
	}
}

// TestDeleteIndexFailureFirstIndex covers the boundary: the very first
// index delete fails, so nothing was removed yet and the compensation loop
// must be a clean no-op.
func TestDeleteIndexFailureFirstIndex(t *testing.T) {
	e, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	if _, err := e.Exec(`CREATE TABLE t (id INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(`INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(`CREATE INDEX ix ON t (id) USING BTREE`); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("boom")
	e.failIndexDelete = func(string) error { return injected }
	if _, err := e.Exec(`DELETE FROM t`); !errors.Is(err, injected) {
		t.Fatalf("got %v, want injected error", err)
	}
	e.failIndexDelete = nil
	res, err := e.Exec(`SELECT count(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].Int(); n != 3 {
		t.Fatalf("rows = %d, want 3", n)
	}
	if res, err = e.Exec(`DELETE FROM t`); err != nil || res.RowsAffected != 3 {
		t.Fatalf("retry: affected %d, err %v", res.RowsAffected, err)
	}
}
