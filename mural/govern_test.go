package mural

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/mural-db/mural/internal/wordnet"
)

// loadUniTable fills table t with n UNITEXT rows cycling through similar names,
// so self-joins under Ψ do quadratic edit-distance work.
func loadUniTable(t *testing.T, e *Engine, table string, n int) {
	t.Helper()
	e.MustExec(fmt.Sprintf(`CREATE TABLE %s (id INT, name UNITEXT)`, table))
	names := []string{"akash", "akaash", "aakash", "vikram", "vikran", "priya"}
	var sb strings.Builder
	fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", table)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, unitext('%s', english))", i, names[i%len(names)])
	}
	e.MustExec(sb.String())
}

// expensivePsiJoin is a Ψ self-join: n² edit-distance evaluations, far more
// than one cancel interval of row-steps.
func expensivePsiJoin(table string) string {
	return fmt.Sprintf(`SELECT count(*) FROM %[1]s a, %[1]s b
		WHERE a.name LEXEQUAL b.name THRESHOLD 2`, table)
}

// SET statement_timeout must bound a runaway Ψ join with the typed error,
// and SET statement_timeout = 0 must lift the bound again.
func TestStatementTimeoutSetting(t *testing.T) {
	e := memEngine(t)
	loadUniTable(t, e, "t", 800)
	before := mQueryTimeouts.Value()
	e.MustExec(`SET statement_timeout = 20`)
	_, err := e.Exec(expensivePsiJoin("t"))
	if !errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("Ψ join under 20ms timeout = %v, want ErrQueryTimeout", err)
	}
	if got := mQueryTimeouts.Value(); got != before+1 {
		t.Errorf("mural_query_timeouts_total advanced by %d, want 1", got-before)
	}
	e.MustExec(`SET statement_timeout = 0`)
	if _, err := e.Exec(expensivePsiJoin("t")); err != nil {
		t.Fatalf("Ψ join with timeout lifted: %v", err)
	}
}

// Canceling ExecContext mid-statement surfaces ErrCanceled promptly.
func TestExecContextCancel(t *testing.T) {
	e := memEngine(t)
	loadUniTable(t, e, "t", 400)
	before := mQueriesCanceled.Value()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.ExecContext(ctx, expensivePsiJoin("t"))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled Ψ join = %v, want ErrCanceled", err)
	}
	if elapsed > time.Second {
		t.Errorf("cancel took %s to be observed, want well under 1s", elapsed)
	}
	if got := mQueriesCanceled.Value(); got != before+1 {
		t.Errorf("mural_queries_canceled_total advanced by %d, want 1", got-before)
	}
}

// A deadline expiring while Ω probes materialize closures surfaces
// ErrQueryTimeout: the closure work is on the checkpointed path.
func TestTimeoutDuringOmegaClosureExpansion(t *testing.T) {
	net := wordnet.Generate(wordnet.Config{Synsets: 20000, Seed: 1})
	e, err := Open(Config{WordNet: net})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.MustExec(`CREATE TABLE item (iid INT, cat UNITEXT)`)
	e.MustExec(`CREATE TABLE concept (cid INT, name UNITEXT)`)
	words := []string{"history", "historiography", "physics", "music", "art"}
	var sb strings.Builder
	sb.WriteString(`INSERT INTO item VALUES `)
	for i := 0; i < 4000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, unitext('%s', english))", i, words[i%len(words)])
	}
	e.MustExec(sb.String())
	sb.Reset()
	sb.WriteString(`INSERT INTO concept VALUES `)
	for i := 0; i < 40; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, unitext('%s', english))", i, words[i%len(words)])
	}
	e.MustExec(sb.String())
	e.MustExec(`SET statement_timeout = 1`)
	_, err = e.Exec(`SELECT count(*) FROM item i, concept c WHERE i.cat SEMEQUAL c.name`)
	if !errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("Ω join under 1ms timeout = %v, want ErrQueryTimeout", err)
	}
}

// SET max_query_mem bounds materializing queries with ErrMemoryLimit.
func TestQueryMemLimitSetting(t *testing.T) {
	e := memEngine(t)
	loadUniTable(t, e, "t", 2000)
	e.MustExec(`SET max_query_mem = 16384`)
	_, err := e.Exec(`SELECT id, name FROM t ORDER BY name`)
	if !errors.Is(err, ErrMemoryLimit) {
		t.Fatalf("sort under 16KiB budget = %v, want ErrMemoryLimit", err)
	}
	e.MustExec(`SET max_query_mem = 0`)
	if _, err := e.Exec(`SELECT id, name FROM t ORDER BY name`); err != nil {
		t.Fatalf("sort with budget lifted: %v", err)
	}
}

// Admission control: an open cursor holds its slot until Close, and excess
// statements are rejected with the typed error.
func TestAdmissionControl(t *testing.T) {
	e, err := Open(Config{MaxConcurrentQueries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.MustExec(`CREATE TABLE t (id INT)`)
	e.MustExec(`INSERT INTO t VALUES (1), (2), (3)`)
	before := mAdmissionRejected.Value()
	rows, err := e.Query(`SELECT id FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(`SELECT id FROM t`); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("second statement = %v, want ErrAdmissionRejected", err)
	}
	if got := mAdmissionRejected.Value(); got != before+1 {
		t.Errorf("mural_admission_rejected_total advanced by %d, want 1", got-before)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(`SELECT id FROM t`); err != nil {
		t.Fatalf("statement after cursor close: %v (slot not released)", err)
	}
}

// EXPLAIN ANALYZE reports the query's peak accounted memory.
func TestExplainAnalyzeMemoryLine(t *testing.T) {
	e := memEngine(t)
	loadUniTable(t, e, "t", 500)
	res := e.MustExec(`EXPLAIN ANALYZE SELECT id, name FROM t ORDER BY name`)
	if !strings.Contains(res.Plan, "Memory: peak=") {
		t.Fatalf("EXPLAIN ANALYZE has no memory line:\n%s", res.Plan)
	}
	// A sort of 500 rows accounts a visibly nonzero peak.
	if strings.Contains(res.Plan, "Memory: peak=0 bytes") {
		t.Errorf("EXPLAIN ANALYZE peak is zero:\n%s", res.Plan)
	}
}

// An ungoverned statement still runs through the zero-overhead path: no
// context, no limits, no governance state.
func TestUngovernedPathStillWorks(t *testing.T) {
	e := memEngine(t)
	loadUniTable(t, e, "t", 100)
	res, stop := e.queryResources(context.Background())
	stop()
	if res != nil {
		t.Fatalf("queryResources with no limits = %v, want nil (ungoverned)", res)
	}
	if r := e.MustExec(`SELECT count(*) FROM t`); r.Rows[0][0].Int() != 100 {
		t.Fatalf("count = %v", r.Rows[0])
	}
}
