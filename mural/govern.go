package mural

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/mural-db/mural/internal/exec"
	"github.com/mural-db/mural/internal/metrics"
)

// Resource governance: per-statement deadlines, a memory ceiling and
// admission control. The knobs layer in the usual way — session settings
// (SET statement_timeout / max_query_mem) override the Config defaults, and
// a zero at either level disables that limit. Governance is pay-as-you-go: a
// statement with no context, no deadline and no memory cap runs exactly the
// ungoverned code path it always did.

// Typed statement failures (check with errors.Is). The first three re-export
// the executor's sentinels so callers need not import internal packages.
var (
	// ErrCanceled reports a statement stopped by context cancellation (or a
	// wire-level cancel message).
	ErrCanceled = exec.ErrCanceled
	// ErrQueryTimeout reports a statement that exceeded its deadline
	// (Config.QueryTimeout or SET statement_timeout).
	ErrQueryTimeout = exec.ErrQueryTimeout
	// ErrMemoryLimit reports a statement that exceeded its memory budget
	// (Config.MaxQueryMem or SET max_query_mem).
	ErrMemoryLimit = exec.ErrMemoryLimit
	// ErrAdmissionRejected reports a statement refused because
	// Config.MaxConcurrentQueries statements were already running.
	ErrAdmissionRejected = errors.New("mural: too many concurrent queries")
)

var (
	mQueriesCanceled   = metrics.Default.Counter("mural_queries_canceled_total")
	mQueryTimeouts     = metrics.Default.Counter("mural_query_timeouts_total")
	mAdmissionRejected = metrics.Default.Counter("mural_admission_rejected_total")
	gQueriesInflight   = metrics.Default.Gauge("mural_queries_inflight")
)

// admit claims an execution slot, or fails with ErrAdmissionRejected when
// Config.MaxConcurrentQueries slots are taken. The returned release is
// idempotent and must always be called.
func (e *Engine) admit() (func(), error) {
	n := e.inflight.Add(1)
	if max := int64(e.cfg.MaxConcurrentQueries); max > 0 && n > max {
		e.inflight.Add(-1)
		mAdmissionRejected.Inc()
		return nil, fmt.Errorf("%w (%d running, limit %d)", ErrAdmissionRejected, n-1, max)
	}
	gQueriesInflight.Set(n)
	released := false
	return func() {
		if released {
			return
		}
		released = true
		gQueriesInflight.Set(e.inflight.Add(-1))
	}, nil
}

// statementTimeout resolves the active per-statement deadline: the session's
// `SET statement_timeout = <ms>` when set (0 disables), else
// Config.QueryTimeout.
func (e *Engine) statementTimeout() time.Duration {
	if v, ok := e.cat.Setting("statement_timeout"); ok {
		if ms, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64); err == nil && ms >= 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	return e.cfg.QueryTimeout
}

// queryMemLimit resolves the active per-statement memory ceiling in bytes:
// `SET max_query_mem = <bytes>` when set (0 disables), else
// Config.MaxQueryMem.
func (e *Engine) queryMemLimit() int64 {
	if v, ok := e.cat.Setting("max_query_mem"); ok {
		if b, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64); err == nil && b >= 0 {
			return b
		}
	}
	return e.cfg.MaxQueryMem
}

// queryResources assembles the governance state for one statement. It
// returns a nil Resources — the zero-overhead ungoverned path — when the
// caller's context can never fire and no limit is configured. The returned
// stop must be called when the statement finishes (it releases the deadline
// timer); it is non-nil even for ungoverned statements.
func (e *Engine) queryResources(ctx context.Context) (*exec.Resources, func()) {
	if ctx == nil {
		ctx = context.Background()
	}
	timeout := e.statementTimeout()
	maxMem := e.queryMemLimit()
	if ctx.Done() == nil && timeout <= 0 && maxMem <= 0 {
		return nil, func() {}
	}
	stop := func() {}
	if timeout > 0 {
		ctx, stop = context.WithTimeout(ctx, timeout)
	}
	return exec.NewResources(ctx, maxMem), stop
}

// noteGovernedErr counts governed terminations in the engine metrics.
func noteGovernedErr(err error) {
	switch {
	case err == nil:
	case errors.Is(err, exec.ErrCanceled):
		mQueriesCanceled.Inc()
	case errors.Is(err, exec.ErrQueryTimeout):
		mQueryTimeouts.Inc()
	}
}
