package wordnet

import (
	"testing"

	"github.com/mural-db/mural/internal/types"
)

func smallNet(t testing.TB) *Net {
	t.Helper()
	return Generate(Config{Synsets: 5000, Seed: 42,
		Langs: []types.LangID{types.LangEnglish, types.LangTamil, types.LangFrench}})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Synsets: 1000, Seed: 7})
	b := Generate(Config{Synsets: 1000, Seed: 7})
	if a.NumSynsets() != b.NumSynsets() {
		t.Fatal("nondeterministic synset count")
	}
	for id := 0; id < a.NumSynsets(); id++ {
		if a.Parent(SynsetID(id)) != b.Parent(SynsetID(id)) {
			t.Fatalf("nondeterministic parent at %d", id)
		}
		if a.Lemma(types.LangEnglish, SynsetID(id)) != b.Lemma(types.LangEnglish, SynsetID(id)) {
			t.Fatalf("nondeterministic lemma at %d", id)
		}
	}
	c := Generate(Config{Synsets: 1000, Seed: 8})
	diff := false
	for id := 0; id < 1000; id++ {
		if a.Parent(SynsetID(id)) != c.Parent(SynsetID(id)) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical structure")
	}
}

func TestGenerateShape(t *testing.T) {
	net := Generate(Config{Synsets: 20000, Seed: 1})
	if net.NumSynsets() != 20000 {
		t.Fatalf("NumSynsets = %d", net.NumSynsets())
	}
	if d := net.MaxDepth(); d < 5 || d > 16 {
		t.Errorf("MaxDepth = %d, want WordNet-like (5..16]", d)
	}
	if h := net.AvgDepth(); h < 2 || h > 14 {
		t.Errorf("AvgDepth = %g out of plausible range", h)
	}
	// Word-form ratio near the WordNet ratio 1.32.
	ratio := float64(net.NumWordForms(types.LangEnglish)) / float64(net.NumSynsets())
	if ratio < 1.1 || ratio > 1.6 {
		t.Errorf("word forms per synset = %g, want ~1.32", ratio)
	}
	// Every non-root parent precedes its child (the invariant ClosureSize
	// relies on).
	for id := 1; id < net.NumSynsets(); id++ {
		if p := net.Parent(SynsetID(id)); p >= SynsetID(id) || p == NoSynset {
			t.Fatalf("node %d has parent %d", id, p)
		}
	}
	if net.Parent(0) != NoSynset {
		t.Error("root must have no parent")
	}
}

func TestGenerateRelationsCount(t *testing.T) {
	net := smallNet(t)
	// tree edges (n-1) + equivalence links for 2 extra languages (2n)
	want := net.NumSynsets() - 1 + 2*net.NumSynsets()
	if got := net.NumRelations(); got != want {
		t.Errorf("NumRelations = %d, want %d", got, want)
	}
}

func TestNamedUpperOntology(t *testing.T) {
	net := smallNet(t)
	hist := net.SynsetsOf(types.LangEnglish, "history")
	if len(hist) != 1 {
		t.Fatalf("history resolves to %d synsets", len(hist))
	}
	historiography := net.SynsetsOf(types.LangEnglish, "historiography")
	if len(historiography) != 1 {
		t.Fatalf("historiography resolves to %d synsets", len(historiography))
	}
	// Historiography is a specialized branch of History (the paper's
	// footnote 2 example).
	if !net.IsDescendant(historiography[0], hist[0]) {
		t.Error("historiography must be in TC(history)")
	}
	if net.IsDescendant(hist[0], historiography[0]) {
		t.Error("history must not be in TC(historiography)")
	}
}

func TestClosureAgainstIsDescendant(t *testing.T) {
	net := smallNet(t)
	roots := []SynsetID{0, 1, 10, 100, 1000}
	for _, root := range roots {
		closure := net.Closure(root)
		if len(closure) != net.ClosureSize(root) {
			t.Errorf("root %d: closure len %d != ClosureSize %d", root, len(closure), net.ClosureSize(root))
		}
		// Spot-check membership against the parent-pointer oracle.
		for id := 0; id < net.NumSynsets(); id += 97 {
			_, in := closure[SynsetID(id)]
			if in != net.IsDescendant(SynsetID(id), root) {
				t.Errorf("root %d node %d: closure=%v oracle=%v", root, id, in, !in)
			}
		}
	}
}

func TestClosureOfRootIsWholeNet(t *testing.T) {
	net := smallNet(t)
	if got := net.ClosureSize(0); got != net.NumSynsets() {
		t.Errorf("ClosureSize(root) = %d, want %d", got, net.NumSynsets())
	}
}

func TestFindClosureOfSize(t *testing.T) {
	net := smallNet(t)
	for _, target := range []int{10, 100, 1000} {
		id := net.FindClosureOfSize(target)
		got := net.ClosureSize(id)
		if got < target/3 || got > target*3 {
			t.Errorf("FindClosureOfSize(%d) found %d (closure %d)", target, id, got)
		}
	}
}

func TestCrossLanguageEquivalence(t *testing.T) {
	net := smallNet(t)
	en := net.SynsetsOf(types.LangEnglish, "history")
	ta := net.SynsetsOf(types.LangTamil, "tamil:history")
	if len(en) != 1 || len(ta) != 1 || en[0] != ta[0] {
		t.Errorf("equivalence link broken: en=%v ta=%v", en, ta)
	}
	if net.Lemma(types.LangTamil, en[0]) != "tamil:history" {
		t.Errorf("Tamil lemma = %q", net.Lemma(types.LangTamil, en[0]))
	}
	if net.Lemma(types.LangGerman, en[0]) != "" {
		t.Error("unlinked language must return empty lemma")
	}
	if net.SynsetsOf(types.LangGerman, "x") != nil {
		t.Error("unlinked language must resolve nothing")
	}
}

func TestClosureCache(t *testing.T) {
	net := smallNet(t)
	cache := NewClosureCache(net)
	root := net.SynsetsOf(types.LangEnglish, "history")[0]
	c1 := cache.Closure(root)
	c2 := cache.Closure(root)
	if &c1 == nil || len(c1) != len(c2) {
		t.Fatal("cache returned different sets")
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits %d misses, want 1/1", hits, misses)
	}
	if !cache.Contains(net.SynsetsOf(types.LangEnglish, "historiography")[0], root) {
		t.Error("Contains(historiography, history) must hold")
	}
	cache.Reset()
	if h, m := cache.Stats(); h != 0 || m != 0 {
		t.Error("Reset must clear counters")
	}
}

func TestMatcher(t *testing.T) {
	net := smallNet(t)
	m := NewMatcher(net)
	history := types.Compose("history", types.LangEnglish)
	historiography := types.Compose("historiography", types.LangEnglish)
	taHistoriography := types.Compose("tamil:historiography", types.LangTamil)
	science := types.Compose("science", types.LangEnglish)

	if !m.Match(historiography, history, nil) {
		t.Error("Ω(historiography, history) must hold")
	}
	if !m.Match(history, history, nil) {
		t.Error("Ω is reflexive on the closure root")
	}
	if m.Match(science, history, nil) {
		t.Error("Ω(science, history) must not hold")
	}
	// Cross-lingual: Tamil historiography is equivalence-linked.
	if !m.Match(taHistoriography, history, nil) {
		t.Error("Ω must match across languages via equivalence links")
	}
	// Language filter excludes Tamil rows.
	if m.Match(taHistoriography, history, []types.LangID{types.LangEnglish}) {
		t.Error("language filter must exclude Tamil LHS")
	}
	if !m.Match(taHistoriography, history, []types.LangID{types.LangEnglish, types.LangTamil}) {
		t.Error("language filter must admit Tamil LHS when listed")
	}
	// Unknown words match nothing.
	if m.Match(types.Compose("zorkmid", types.LangEnglish), history, nil) {
		t.Error("unknown LHS word must not match")
	}
	if m.Match(historiography, types.Compose("zorkmid", types.LangEnglish), nil) {
		t.Error("unknown RHS word must not match")
	}
}

func TestMatchNoCacheAgreesWithMatch(t *testing.T) {
	net := smallNet(t)
	m := NewMatcher(net)
	history := types.Compose("history", types.LangEnglish)
	words := []string{"historiography", "autobiography", "science", "music", "history", "entity", "concept_002000"}
	for _, w := range words {
		lhs := types.Compose(w, types.LangEnglish)
		if m.Match(lhs, history, nil) != m.MatchNoCache(lhs, history, nil) {
			t.Errorf("Match and MatchNoCache disagree on %q", w)
		}
	}
}

func TestFullScaleGenerationStats(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale WordNet generation in -short mode")
	}
	net := Generate(Config{Seed: 3}) // paper-scale defaults
	if net.NumSynsets() != WordNetSynsets {
		t.Errorf("NumSynsets = %d, want %d", net.NumSynsets(), WordNetSynsets)
	}
	wf := net.NumWordForms(types.LangEnglish)
	if wf < 130000 || wf > 165000 {
		t.Errorf("word forms = %d, want ~%d", wf, WordNetWordForms)
	}
	if d := net.MaxDepth(); d > 16 {
		t.Errorf("MaxDepth = %d exceeds WordNet's", d)
	}
}

func BenchmarkClosureLarge(b *testing.B) {
	net := Generate(Config{Synsets: 50000, Seed: 2})
	root := net.FindClosureOfSize(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Closure(root)
	}
}

func BenchmarkMatchCached(b *testing.B) {
	net := Generate(Config{Synsets: 50000, Seed: 2})
	m := NewMatcher(net)
	history := types.Compose("history", types.LangEnglish)
	lhs := types.Compose("historiography", types.LangEnglish)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(lhs, history, nil)
	}
}
