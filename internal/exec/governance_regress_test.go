package exec

import (
	"context"
	"errors"
	"testing"

	"github.com/mural-db/mural/internal/leakcheck"
)

// A Gather worker whose merge-batch Grow trips the memory ceiling must
// return the failed batch's bytes: Grow records the charge even on failure,
// and the batch never reaches the consumer, so nothing downstream can
// release it. Regression test — the flush path used to return the error
// with the charge still accounted.
func TestGatherGrowFailureReleasesBatchCharge(t *testing.T) {
	leakcheck.Check(t)
	env := newMockEnv()
	mkIntTable(env, "t", 2000)
	gather := gatherOverScan("t", 2, true)
	// A 1-byte ceiling fails the first merge-batch Grow in every worker.
	res := NewResources(context.Background(), 1)
	cur, err := RunGoverned(env, gather, nil, res)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 5000; i++ {
		_, ok, err := cur.Next()
		if err != nil {
			lastErr = err
			break
		}
		if !ok {
			break
		}
	}
	if !errors.Is(lastErr, ErrMemoryLimit) {
		t.Fatalf("Next under 1-byte budget = %v, want ErrMemoryLimit", lastErr)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("Close after memory-limit error: %v", err)
	}
	if got := res.MemBytes(); got != 0 {
		t.Errorf("MemBytes after Close = %d, want 0 (failed batch's charge must be returned)", got)
	}
}

// governedWorkerEvaluator builds the evaluator shape a Gather worker gets:
// shared governance state, private tick counter.
func governedWorkerEvaluator(env Env, ctx context.Context) *evaluator {
	return &evaluator{env: env, stats: &RunStats{}, res: NewResources(ctx, 0)}
}

// A morsel scan over a canceled query must surface ErrCanceled within one
// tick interval instead of draining the table. Regression test — the claim
// loop used to run without a cancellation checkpoint.
func TestMorselScanChecksCancellation(t *testing.T) {
	env := newMockEnv()
	// Enough rows that the amortized checkpoint (every cancelInterval rows)
	// fires well before exhaustion.
	mkIntTable(env, "t", 4*cancelInterval)
	np, err := env.TablePages("t")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	it := &morselScanIter{
		env: env,
		ev:  governedWorkerEvaluator(env, ctx),
		src: &morselSource{table: "t", npages: np},
	}
	defer it.Close()
	var lastErr error
	for i := 0; i < 4*cancelInterval; i++ {
		_, ok, err := it.Next()
		if err != nil {
			lastErr = err
			break
		}
		if !ok {
			t.Fatal("morsel scan drained to completion despite canceled context")
		}
	}
	if !errors.Is(lastErr, ErrCanceled) {
		t.Fatalf("morsel scan under canceled context = %v, want ErrCanceled", lastErr)
	}
}

// The striped fallback partition must checkpoint too: a worker can skip
// through mod-1 of every mod rows without surfacing one, so the checkpoint
// cannot live only in the consumer loop. Regression test — the stripe loop
// used to run without a cancellation checkpoint.
func TestStripedScanChecksCancellation(t *testing.T) {
	env := newMockEnv()
	mkIntTable(env, "t", 4*cancelInterval)
	child, err := env.ScanTable("t")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	it := &stripedIter{child: child, ev: governedWorkerEvaluator(env, ctx), idx: 0, mod: 4}
	defer it.Close()
	var lastErr error
	for i := 0; i < 4*cancelInterval; i++ {
		_, ok, err := it.Next()
		if err != nil {
			lastErr = err
			break
		}
		if !ok {
			t.Fatal("striped scan drained to completion despite canceled context")
		}
	}
	if !errors.Is(lastErr, ErrCanceled) {
		t.Fatalf("striped scan under canceled context = %v, want ErrCanceled", lastErr)
	}
}

// Sanity companion to the regression tests above: an ungoverned parallel
// scan (nil Resources) still terminates and returns every row — the new
// checkpoints must be free when the query has no governance state.
func TestParallelScanUngovernedStillDrains(t *testing.T) {
	env := newMockEnv()
	want := mkIntTable(env, "t", 100)
	got := runAll(t, env, gatherOverScan("t", 2, true))
	eqRowSets(t, got, want)
}
