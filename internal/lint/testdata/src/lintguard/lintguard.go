// Golden package lintguard exercises the metrics-free rule for lint
// packages: the bare lintguard import path marks this package as part of
// the lint suite, where no runtime metric may be registered — directly or
// through a helper the summary proves registers one.
package lintguard

type Registry struct{}

type Counter struct{}

func (r *Registry) Counter(name string) *Counter { return &Counter{} }

func direct(r *Registry) {
	r.Counter("mural_checks_total") // want `lint packages must not register metrics: the analyzers are tooling, not the engine`
}

func helper(r *Registry) {
	r.Counter("mural_helper_runs_total") // want `lint packages must not register metrics: the analyzers are tooling, not the engine`
}

func indirect(r *Registry) {
	helper(r) // want `lint packages must not register metrics: helper transitively registers a metric series`
}

// metricsFree never touches the registry; nothing to report.
func metricsFree(r *Registry) int {
	if r == nil {
		return 0
	}
	return 1
}
