package phonetic

import (
	"strings"
	"unicode"

	"github.com/mural-db/mural/internal/types"
)

// French is a rule-based grapheme-to-phoneme converter covering the French
// orthography patterns that matter for name and title matching (the paper's
// running example stores French rows in the Books catalog). As with the
// other converters, the output is the coarse canonical IPA inventory.
type French struct{}

// NewFrench returns the French converter.
func NewFrench() *French { return &French{} }

// Lang implements Converter.
func (f *French) Lang() types.LangID { return types.LangFrench }

// ToPhoneme implements Converter.
func (f *French) ToPhoneme(text string) string {
	var out strings.Builder
	for i, word := range strings.Fields(strings.ToLower(text)) {
		if i > 0 {
			out.WriteByte(' ')
		}
		out.WriteString(frenchWord(word))
	}
	return collapseRuns(out.String())
}

// isSoftening reports whether a following letter softens c (→s) or g (→ʒ),
// including the accented front vowels.
func isSoftening(r rune) bool {
	switch r {
	case 'e', 'i', 'y', 'é', 'è', 'ê', 'ë', 'î', 'ï':
		return true
	}
	return false
}

func frenchWord(word string) string {
	runes := make([]rune, 0, len(word))
	for _, r := range word {
		if unicode.IsLetter(r) {
			runes = append(runes, unicode.ToLower(r))
		}
	}
	n := len(runes)
	var b strings.Builder
	at := func(i int) rune {
		if i < 0 || i >= n {
			return 0
		}
		return runes[i]
	}
	isVowel := func(r rune) bool {
		switch r {
		case 'a', 'e', 'i', 'o', 'u', 'y', 'é', 'è', 'ê', 'ë', 'à', 'â', 'î', 'ï', 'ô', 'û', 'ù':
			return true
		}
		return false
	}
	for i := 0; i < n; {
		r := runes[i]
		rest := n - i
		next := at(i + 1)
		next2 := at(i + 2)
		switch {
		case rest >= 3 && r == 'e' && next == 'a' && next2 == 'u': // eau
			b.WriteRune('o')
			i += 3
		case rest >= 2 && r == 'a' && next == 'u': // au
			b.WriteRune('o')
			i += 2
		case rest >= 2 && r == 'o' && next == 'u': // ou
			b.WriteRune('u')
			i += 2
		case rest >= 2 && r == 'o' && next == 'i': // oi
			b.WriteString("va") // /wa/, w merged to v
			i += 2
		case rest >= 2 && r == 'a' && next == 'i': // ai
			b.WriteRune('e')
			i += 2
		case rest >= 2 && r == 'e' && next == 'i': // ei
			b.WriteRune('e')
			i += 2
		case rest >= 2 && r == 'c' && next == 'h': // ch
			b.WriteRune('ʃ')
			i += 2
		case rest >= 2 && r == 'g' && next == 'n': // gn
			b.WriteString("nj")
			i += 2
		case rest >= 2 && r == 'q' && next == 'u': // qu
			b.WriteRune('k')
			i += 2
		case rest >= 2 && r == 'p' && next == 'h':
			b.WriteRune('f')
			i += 2
		case rest >= 2 && r == 't' && next == 'h':
			b.WriteRune('t')
			i += 2
		case r == 'ç':
			b.WriteRune('s')
			i++
		case r == 'é', r == 'è', r == 'ê', r == 'ë':
			b.WriteRune('e')
			i++
		case r == 'à', r == 'â':
			b.WriteRune('a')
			i++
		case r == 'î', r == 'ï':
			b.WriteRune('i')
			i++
		case r == 'ô':
			b.WriteRune('o')
			i++
		case r == 'û', r == 'ù':
			b.WriteRune('u')
			i++
		case r == 'c':
			if isSoftening(next) {
				b.WriteRune('s')
			} else {
				b.WriteRune('k')
			}
			i++
		case r == 'g':
			if isSoftening(next) {
				b.WriteRune('ʒ')
			} else {
				b.WriteRune('g')
			}
			i++
		case r == 'j':
			b.WriteRune('ʒ')
			i++
		case r == 'h': // silent
			i++
		case r == 'x':
			if i == n-1 {
				// final x silent
			} else {
				b.WriteString("ks")
			}
			i++
		case r == 'w':
			b.WriteRune('v')
			i++
		case r == 'y':
			b.WriteRune('i')
			i++
		case r == 'e' && i == n-1 && n > 2:
			// final e muet
			i++
		case (r == 's' || r == 't' || r == 'd' || r == 'p' || r == 'z') && i == n-1 && n > 2 && !isVowel(at(i-1)):
			// final consonant cluster letter silent (corps, chant)
			i++
		case (r == 's' || r == 't' || r == 'd' || r == 'p' || r == 'z') && i == n-1 && n > 2 && isVowel(at(i-1)):
			// final consonant after vowel silent (Paris, chat)
			i++
		case r == 's' && isVowel(at(i-1)) && isVowel(next):
			b.WriteRune('z') // intervocalic s
			i++
		case isVowel(r):
			b.WriteRune(r)
			i++
		default:
			switch r {
			case 'b', 'd', 'f', 'k', 'l', 'm', 'n', 'p', 'r', 's', 't', 'v', 'z':
				b.WriteRune(r)
			}
			i++
		}
	}
	return b.String()
}
