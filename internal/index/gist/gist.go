// Package gist implements a Generalized Search Tree (GiST) framework in the
// style of Hellerstein, Naughton and Pfeffer (VLDB'95), which is the
// PostgreSQL facility the paper used to host its M-Tree ("The M-Tree index
// was implemented in PostgreSQL using its GiST feature", §4.2.1). The
// framework manages a height-balanced tree of variable-length predicate
// entries over the storage buffer pool; all index semantics — predicate
// consistency, union, penalty and split — are supplied by an Ops extension.
//
// Like the PostgreSQL 7.4 GiST the paper built on, this implementation does
// not write-ahead-log index pages; the engine rebuilds indexes from base
// tables on recovery (the paper makes the same durability caveat in §4.2.1).
package gist

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/mural-db/mural/internal/storage"
)

// Entry is one GiST node entry: a predicate plus either a child page
// (internal node) or a heap RID (leaf node).
type Entry struct {
	Pred  []byte
	Child storage.PageID // internal nodes
	RID   storage.RID    // leaf nodes
}

// Ops is the extension interface: the four classic GiST methods.
// Implementations must be deterministic and stateless.
type Ops interface {
	// Consistent reports whether an entry with this predicate may contain
	// (leaf: does contain) a match for the query.
	Consistent(pred []byte, query any, leaf bool) bool
	// Union returns a predicate that covers every entry in the group.
	Union(entries []Entry) []byte
	// Penalty returns the cost of inserting pred into the subtree described
	// by subtreePred; insertion descends along minimal penalty.
	Penalty(subtreePred, pred []byte) float64
	// PickSplit partitions an overflowing entry set into two non-empty
	// groups.
	PickSplit(entries []Entry) (left, right []Entry)
}

const (
	metaPage  = storage.PageID(0)
	metaMagic = uint32(0x61570002)
	nodeLeaf  = byte(0)
	nodeInner = byte(1)
	// maxPred bounds predicate size so a node always holds >= 2 entries
	// after any split.
	maxPred = (storage.PagePayload - 64) / 2
)

// Tree is a GiST index stored in one buffer-pool file.
type Tree struct {
	pool *storage.Pool
	file storage.FileID
	ops  Ops

	mu         sync.RWMutex
	root       storage.PageID
	height     int
	numEntries int64
}

// Create initializes an empty GiST in an empty attached file.
func Create(pool *storage.Pool, file storage.FileID, ops Ops) (*Tree, error) {
	np, err := pool.DiskPages(file)
	if err != nil {
		return nil, err
	}
	if np != 0 {
		return nil, fmt.Errorf("gist: create in non-empty file (%d pages)", np)
	}
	meta, err := pool.NewPage(file)
	if err != nil {
		return nil, err
	}
	defer meta.Unpin()
	rootH, err := pool.NewPage(file)
	if err != nil {
		return nil, err
	}
	defer rootH.Unpin()
	if err := writeNode(rootH, nodeLeaf, nil); err != nil {
		return nil, err
	}
	t := &Tree{pool: pool, file: file, ops: ops, root: rootH.Key().Page, height: 1}
	t.writeMeta(meta)
	return t, nil
}

// Open loads an existing GiST with the given extension.
func Open(pool *storage.Pool, file storage.FileID, ops Ops) (*Tree, error) {
	h, err := pool.Pin(storage.PageKey{File: file, Page: metaPage})
	if err != nil {
		return nil, err
	}
	defer h.Unpin()
	d := h.Data()
	if binary.LittleEndian.Uint32(d[0:4]) != metaMagic {
		return nil, fmt.Errorf("gist: bad magic in file %d", file)
	}
	return &Tree{
		pool:       pool,
		file:       file,
		ops:        ops,
		root:       storage.PageID(binary.LittleEndian.Uint32(d[4:8])),
		height:     int(binary.LittleEndian.Uint32(d[8:12])),
		numEntries: int64(binary.LittleEndian.Uint64(d[12:20])),
	}, nil
}

func (t *Tree) writeMeta(h *storage.Handle) {
	d := h.Data()
	binary.LittleEndian.PutUint32(d[0:4], metaMagic)
	binary.LittleEndian.PutUint32(d[4:8], uint32(t.root))
	binary.LittleEndian.PutUint32(d[8:12], uint32(t.height))
	binary.LittleEndian.PutUint64(d[12:20], uint64(t.numEntries))
	h.MarkDirty()
}

func (t *Tree) syncMeta() error {
	h, err := t.pool.Pin(storage.PageKey{File: t.file, Page: metaPage})
	if err != nil {
		return err
	}
	defer h.Unpin()
	t.writeMeta(h)
	return nil
}

// Height returns the number of levels (1 = single leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// Len returns the number of leaf entries.
func (t *Tree) Len() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numEntries
}

// NumPages returns the allocated page count of the index file.
func (t *Tree) NumPages() (storage.PageID, error) {
	return t.pool.DiskPages(t.file)
}

// Node wire format (page payload):
//
//	[0]    type
//	[1:3)  entry count
//	entries: predLen uvarint | pred | page uint32 | slot uint16
//
// Internal entries store the child page in the page field (slot unused).
func writeNode(h *storage.Handle, typ byte, entries []Entry) error {
	buf := make([]byte, 0, storage.PagePayload)
	buf = append(buf, typ)
	var cnt [2]byte
	binary.LittleEndian.PutUint16(cnt[:], uint16(len(entries)))
	buf = append(buf, cnt[:]...)
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, uint64(len(e.Pred)))
		buf = append(buf, e.Pred...)
		var p [6]byte
		if typ == nodeLeaf {
			binary.LittleEndian.PutUint32(p[0:4], uint32(e.RID.Page))
			binary.LittleEndian.PutUint16(p[4:6], e.RID.Slot)
		} else {
			binary.LittleEndian.PutUint32(p[0:4], uint32(e.Child))
		}
		buf = append(buf, p[:]...)
	}
	if len(buf) > storage.PagePayload {
		return fmt.Errorf("gist: node overflow: %d bytes", len(buf))
	}
	d := h.Data()
	copy(d, buf)
	for i := len(buf); i < len(d); i++ {
		d[i] = 0
	}
	h.MarkDirty()
	return nil
}

func readNode(h *storage.Handle) (byte, []Entry, error) {
	d := h.Data()
	typ := d[0]
	count := int(binary.LittleEndian.Uint16(d[1:3]))
	pos := 3
	entries := make([]Entry, 0, count)
	for i := 0; i < count; i++ {
		plen, sz := binary.Uvarint(d[pos:])
		if sz <= 0 || int(plen) > storage.PagePayload {
			return 0, nil, fmt.Errorf("gist: corrupt node: bad predicate length")
		}
		pos += sz
		pred := make([]byte, plen)
		copy(pred, d[pos:pos+int(plen)])
		pos += int(plen)
		var e Entry
		e.Pred = pred
		if typ == nodeLeaf {
			e.RID = storage.RID{
				Page: storage.PageID(binary.LittleEndian.Uint32(d[pos : pos+4])),
				Slot: binary.LittleEndian.Uint16(d[pos+4 : pos+6]),
			}
		} else {
			e.Child = storage.PageID(binary.LittleEndian.Uint32(d[pos : pos+4]))
		}
		pos += 6
		entries = append(entries, e)
	}
	return typ, entries, nil
}

func entriesSize(entries []Entry) int {
	size := 3
	for _, e := range entries {
		size += uvarintLen(uint64(len(e.Pred))) + len(e.Pred) + 6
	}
	return size
}

func uvarintLen(x uint64) int {
	l := 1
	for x >= 0x80 {
		x >>= 7
		l++
	}
	return l
}

// Insert adds a leaf entry with the given predicate and RID.
func (t *Tree) Insert(pred []byte, rid storage.RID) error {
	if len(pred) > maxPred {
		return fmt.Errorf("gist: predicate of %d bytes exceeds max %d", len(pred), maxPred)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf := Entry{Pred: pred, RID: rid}
	upd, split, err := t.insertAt(t.root, t.height, leaf)
	if err != nil {
		return err
	}
	if split != nil {
		// Root split: new root with the two cover entries.
		h, err := t.pool.NewPage(t.file)
		if err != nil {
			return err
		}
		if err := writeNode(h, nodeInner, []Entry{*upd, *split}); err != nil {
			h.Unpin()
			return err
		}
		t.root = h.Key().Page
		t.height++
		h.Unpin()
	}
	t.numEntries++
	return t.syncMeta()
}

// insertAt inserts the entry into the subtree rooted at page. It returns
// the updated cover entry for this subtree and, if the node split, a second
// cover entry for the new sibling.
func (t *Tree) insertAt(page storage.PageID, level int, leaf Entry) (*Entry, *Entry, error) {
	h, err := t.pool.Pin(storage.PageKey{File: t.file, Page: page})
	if err != nil {
		return nil, nil, err
	}
	defer h.Unpin()
	typ, entries, err := readNode(h)
	if err != nil {
		return nil, nil, err
	}

	if typ == nodeLeaf {
		entries = append(entries, leaf)
		return t.writeOrSplit(h, typ, entries)
	}

	// Choose the child with minimal penalty (ties: first).
	best := 0
	bestPen := t.ops.Penalty(entries[0].Pred, leaf.Pred)
	for i := 1; i < len(entries); i++ {
		if pen := t.ops.Penalty(entries[i].Pred, leaf.Pred); pen < bestPen {
			best, bestPen = i, pen
		}
	}
	upd, split, err := t.insertAt(entries[best].Child, level-1, leaf)
	if err != nil {
		return nil, nil, err
	}
	entries[best] = *upd
	if split != nil {
		entries = append(entries, *split)
	}
	return t.writeOrSplit(h, typ, entries)
}

// writeOrSplit writes the node back (splitting on overflow) and returns the
// cover entr(ies) describing it.
func (t *Tree) writeOrSplit(h *storage.Handle, typ byte, entries []Entry) (*Entry, *Entry, error) {
	if entriesSize(entries) <= storage.PagePayload {
		if err := writeNode(h, typ, entries); err != nil {
			return nil, nil, err
		}
		cover := Entry{Pred: t.ops.Union(entries), Child: h.Key().Page}
		return &cover, nil, nil
	}
	left, right := t.ops.PickSplit(entries)
	if len(left) == 0 || len(right) == 0 {
		return nil, nil, fmt.Errorf("gist: PickSplit returned an empty group")
	}
	if entriesSize(left) > storage.PagePayload || entriesSize(right) > storage.PagePayload {
		return nil, nil, fmt.Errorf("gist: PickSplit group still overflows a page")
	}
	if err := writeNode(h, typ, left); err != nil {
		return nil, nil, err
	}
	rh, err := t.pool.NewPage(t.file)
	if err != nil {
		return nil, nil, err
	}
	defer rh.Unpin()
	if err := writeNode(rh, typ, right); err != nil {
		return nil, nil, err
	}
	lCover := Entry{Pred: t.ops.Union(left), Child: h.Key().Page}
	rCover := Entry{Pred: t.ops.Union(right), Child: rh.Key().Page}
	return &lCover, &rCover, nil
}

// Search visits every leaf entry consistent with the query, in an
// unspecified order. It returns the number of index pages visited, which
// the executor reports for cost accounting (the paper's M-Tree pruning
// efficiency analysis in §5.3 is about exactly this number).
func (t *Tree) Search(query any, fn func(pred []byte, rid storage.RID) bool) (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pages := 0
	var walk func(page storage.PageID) (bool, error)
	walk = func(page storage.PageID) (bool, error) {
		h, err := t.pool.Pin(storage.PageKey{File: t.file, Page: page})
		if err != nil {
			return false, err
		}
		typ, entries, err := readNode(h)
		h.Unpin()
		if err != nil {
			return false, err
		}
		pages++
		for _, e := range entries {
			if !t.ops.Consistent(e.Pred, query, typ == nodeLeaf) {
				continue
			}
			if typ == nodeLeaf {
				if !fn(e.Pred, e.RID) {
					return false, nil
				}
			} else {
				cont, err := walk(e.Child)
				if err != nil || !cont {
					return cont, err
				}
			}
		}
		return true, nil
	}
	_, err := walk(t.root)
	return pages, err
}

// Delete removes the leaf entry with exactly this predicate and RID. Cover
// predicates on the path are left untouched: an M-Tree covering radius that
// is larger than necessary stays *correct* (it can only cause extra visits,
// never missed results), which is the standard GiST deletion shortcut.
// Returns an error when no such entry exists.
func (t *Tree) Delete(pred []byte, rid storage.RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	deleted, err := t.deleteAt(t.root, pred, rid)
	if err != nil {
		return err
	}
	if !deleted {
		return fmt.Errorf("gist: delete: entry not found")
	}
	t.numEntries--
	return t.syncMeta()
}

func (t *Tree) deleteAt(page storage.PageID, pred []byte, rid storage.RID) (bool, error) {
	h, err := t.pool.Pin(storage.PageKey{File: t.file, Page: page})
	if err != nil {
		return false, err
	}
	typ, entries, err := readNode(h)
	if err != nil {
		h.Unpin()
		return false, err
	}
	if typ == nodeLeaf {
		for i, e := range entries {
			if e.RID == rid && string(e.Pred) == string(pred) {
				entries = append(entries[:i], entries[i+1:]...)
				err := writeNode(h, typ, entries)
				h.Unpin()
				return true, err
			}
		}
		h.Unpin()
		return false, nil
	}
	// Internal: the entry could be under any child whose cover admits the
	// leaf predicate as a point query; Union covers every member, so a
	// Consistent-free full descent bounded by the cover check via Union is
	// not available generically — walk all children (deletion is rare in
	// the paper's load-then-query workloads).
	h.Unpin()
	for _, e := range entries {
		found, err := t.deleteAt(e.Child, pred, rid)
		if err != nil || found {
			return found, err
		}
	}
	return false, nil
}
