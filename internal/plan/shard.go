// Shard post-pass: rewrite plans over hash-sharded tables into
// Gather-over-Remote trees, modeled on promql-engine's RemoteExecution /
// shard-expressions split. Every scan of a sharded table must execute on
// the shards (the coordinator's local heaps are empty routers), so unlike
// the Parallelize pass this rewrite is not cost-gated: it walks the plan
// top-down, replaces the largest pushable subtree it finds with one Remote
// fragment per shard merged by a Gather, and splits eligible aggregates
// into per-shard partials plus a coordinator-side merge.
package plan

import (
	"github.com/mural-db/mural/internal/sql"
	"github.com/mural-db/mural/internal/types"
)

// Shard rewrites every access to a sharded table in the tree rooted at n.
// With no shards configured it returns n unchanged. It runs before
// Parallelize: the coordinator-side remainder may still grow local Gather
// exchanges, and each shard re-runs Parallelize over its decoded fragment.
func Shard(n *Node, shards []string) *Node {
	if len(shards) < 2 || n == nil {
		return n
	}
	return shardRewrite(n, shards)
}

func shardRewrite(n *Node, shards []string) *Node {
	if n == nil || n.Op == OpRemote || n.Op == OpGather {
		return n
	}
	// Aggregate split: COUNT/SUM/MIN/MAX over a pushable input become a
	// per-shard partial aggregate plus a coordinator merge. AVG (and any
	// future non-decomposable aggregate) keeps the aggregation at the
	// coordinator and only remotes the input below it.
	if n.Op == OpAggregate && touchesTable(n.Children[0]) && pushable(n.Children[0]) && splittableAggs(n.Aggs) {
		return splitAggregate(n, shards)
	}
	if touchesTable(n) && pushable(n) {
		return remoteOver(n, shards)
	}
	for i, c := range n.Children {
		n.Children[i] = shardRewrite(c, shards)
	}
	return n
}

// pushable reports whether the whole subtree can run on a shard verbatim.
// Joins stay at the coordinator: the two sides hash-shard on their own
// first columns, so matching rows of different tables need not be
// co-located. Sort stays too — the Gather merge is arrival-order and would
// destroy a per-shard order anyway. Limit and Distinct push down but keep
// their coordinator copy (see remoteOver).
func pushable(n *Node) bool {
	switch n.Op {
	case OpSeqScan, OpBTreeScan, OpMTreeScan, OpMDIScan, OpQGramScan:
		return true
	case OpFilter, OpProject, OpMaterialize, OpLimit, OpDistinct:
		return pushable(n.Children[0])
	default:
		return false
	}
}

// touchesTable reports whether the subtree reads any base table (when a
// shard map is set, every user table is sharded).
func touchesTable(n *Node) bool {
	if n.Table != "" {
		return true
	}
	for _, c := range n.Children {
		if touchesTable(c) {
			return true
		}
	}
	return false
}

func splittableAggs(aggs []AggSpec) bool {
	for _, a := range aggs {
		switch a.Kind {
		case sql.FuncCount, sql.FuncSum, sql.FuncMin, sql.FuncMax:
		default:
			return false
		}
	}
	return true
}

// remoteOver replaces a pushable subtree with Gather(Remote_0 .. Remote_n-1),
// each Remote shipping a copy of the subtree to one shard. Limit and
// Distinct keep a coordinator copy above the Gather: per-shard limits bound
// shipping, but n shards each returning LIMIT k rows still need the final
// cut (and per-shard DISTINCT can leave cross-shard duplicates only for
// rows that hash-routed apart, which re-deduplicate here).
func remoteOver(n *Node, shards []string) *Node {
	clearParallel(n)
	g := gatherShards(n, shards)
	switch n.Op {
	case OpLimit:
		return &Node{Op: OpLimit, Children: []*Node{g}, Cols: n.Cols, ColNames: n.ColNames, LimitN: n.LimitN, EstRows: n.EstRows, EstCost: g.EstCost}
	case OpDistinct:
		return &Node{Op: OpDistinct, Children: []*Node{g}, Cols: n.Cols, ColNames: n.ColNames, EstRows: n.EstRows, EstCost: g.EstCost + n.EstRows*CPUTupleCost}
	default:
		return g
	}
}

// gatherShards builds the exchange: one Remote child per shard, merged by a
// Gather whose worker count equals the shard count (worker i drives shard
// i's stream, so a slow shard never blocks the others).
func gatherShards(frag *Node, shards []string) *Node {
	children := make([]*Node, len(shards))
	perShard := frag.EstCost / float64(len(shards))
	for i, addr := range shards {
		children[i] = &Node{
			Op:        OpRemote,
			Children:  []*Node{frag},
			Cols:      frag.Cols,
			ColNames:  frag.ColNames,
			ShardID:   i,
			ShardAddr: addr,
			EstRows:   frag.EstRows / float64(len(shards)),
			EstCost:   perShard + frag.EstRows/float64(len(shards))*ExchangeRowCost,
		}
	}
	return &Node{
		Op:       OpGather,
		Children: children,
		Cols:     frag.Cols,
		ColNames: frag.ColNames,
		Workers:  len(shards),
		EstRows:  frag.EstRows,
		EstCost:  children[0].EstCost + frag.EstRows*ExchangeRowCost,
	}
}

// splitAggregate rewrites Aggregate(child) into
//
//	FinalAggregate(Gather(Remote(PartialAggregate(child)) x shards))
//
// The partial emits [group keys..., partial agg values...] per shard; the
// final re-groups on the shipped keys and merges the partials (COUNT sums
// the int64 partial counts — type-preserving, so a distributed COUNT is
// bit-identical to the single-node answer).
func splitAggregate(n *Node, shards []string) *Node {
	child := n.Children[0]
	clearParallel(child)
	g := len(n.GroupBy)

	// Partial: same grouping and aggregates, output schema fixed to
	// [keys..., aggs...] so the final half addresses partials by position.
	partialProjs := make([]Expr, 0, g+len(n.Aggs))
	partialCols := make([]ColInfo, 0, g+len(n.Aggs))
	partialNames := make([]string, 0, g+len(n.Aggs))
	for i, ge := range n.GroupBy {
		partialProjs = append(partialProjs, &ColIdx{Idx: i, Kind: ExprKind(ge)})
		partialCols = append(partialCols, ColInfo{Name: "key", Kind: ExprKind(ge)})
		partialNames = append(partialNames, "key")
	}
	for _, a := range n.Aggs {
		partialProjs = append(partialProjs, nil)
		k := aggOutKind(a)
		partialCols = append(partialCols, ColInfo{Name: "partial", Kind: k})
		partialNames = append(partialNames, "partial")
	}
	partial := &Node{
		Op:       OpAggregate,
		Children: []*Node{child},
		Cols:     partialCols,
		ColNames: partialNames,
		GroupBy:  n.GroupBy,
		Aggs:     n.Aggs,
		Projs:    partialProjs,
		EstRows:  n.EstRows,
		EstCost:  n.EstCost,
	}

	gather := gatherShards(partial, shards)

	// Final: re-group on the shipped keys, merge the shipped partials.
	finalGroup := make([]Expr, g)
	for i := 0; i < g; i++ {
		finalGroup[i] = &ColIdx{Idx: i, Kind: partialCols[i].Kind}
	}
	finalAggs := make([]AggSpec, len(n.Aggs))
	for i, a := range n.Aggs {
		finalAggs[i] = AggSpec{Kind: a.Kind, Arg: &ColIdx{Idx: g + i, Kind: partialCols[g+i].Kind}, Merge: true}
	}
	return &Node{
		Op:       OpAggregate,
		Children: []*Node{gather},
		Cols:     n.Cols,
		ColNames: n.ColNames,
		GroupBy:  finalGroup,
		Aggs:     finalAggs,
		Projs:    n.Projs,
		EstRows:  n.EstRows,
		EstCost:  gather.EstCost + n.EstRows*CPUTupleCost,
	}
}

// aggOutKind is the output type of one aggregate, matching the executor's
// aggVal: COUNT is INT, SUM/AVG are FLOAT, MIN/MAX carry the input type.
func aggOutKind(a AggSpec) types.Kind {
	switch a.Kind {
	case sql.FuncCount:
		return types.KindInt
	case sql.FuncSum, sql.FuncAvg:
		return types.KindFloat
	default:
		if a.Arg != nil {
			return ExprKind(a.Arg)
		}
		return types.KindInt
	}
}

// clearParallel strips Parallelize markings from a subtree about to be
// serialized: the shard runs its own Parallelize pass over the decoded
// fragment, and a stale Parallel flag outside a Gather would make the
// row-scan builder look for a worker context that does not exist.
func clearParallel(n *Node) {
	if n == nil {
		return
	}
	n.Parallel = false
	for _, c := range n.Children {
		clearParallel(c)
	}
}
