package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/mural-db/mural/internal/index/mtree"
	"github.com/mural-db/mural/internal/phonetic"
	"github.com/mural-db/mural/internal/storage"
	"github.com/mural-db/mural/internal/types"
	"github.com/mural-db/mural/internal/wordnet"
)

// AblationMTreeSplitResult compares the paper's random split (§4.2.1,
// chosen for "the best index modification time") against the expensive
// mM-RAD split.
type AblationMTreeSplitResult struct {
	Policy         string
	BuildSec       float64
	AvgSearchPages float64
	IndexPages     int
}

// RunAblationMTreeSplit builds an M-Tree with each policy over the same
// phoneme corpus and reports build time and pruning efficiency.
func RunAblationMTreeSplit(names, queries, threshold int, seed int64) ([]AblationMTreeSplitResult, error) {
	recs := genPhonemes(names, seed)
	queryPh := genPhonemes(queries, seed+1)
	var out []AblationMTreeSplitResult
	for _, policy := range []mtree.SplitPolicy{mtree.SplitRandom, mtree.SplitMinMaxRadius} {
		pool := storage.NewPool(4096)
		pool.AttachDisk(1, storage.NewMemDisk())
		ix, err := mtree.Create(pool, 1, policy)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i, ph := range recs {
			if err := ix.Insert(ph, storage.RID{Page: storage.PageID(i/100 + 1), Slot: uint16(i % 100)}); err != nil {
				return nil, err
			}
		}
		buildSec := time.Since(start).Seconds()
		totalPages := 0
		for _, q := range queryPh {
			_, pages, err := ix.RangeSearch(q, threshold)
			if err != nil {
				return nil, err
			}
			totalPages += pages
		}
		np, err := ix.NumPages()
		if err != nil {
			return nil, err
		}
		out = append(out, AblationMTreeSplitResult{
			Policy:         policy.String(),
			BuildSec:       buildSec,
			AvgSearchPages: float64(totalPages) / float64(len(queryPh)),
			IndexPages:     int(np),
		})
	}
	return out, nil
}

// AblationClosureCacheResult quantifies §4.3's hash-table memoization: the
// same Ω probe workload with and without the closure cache, and with the
// cache-hostile LHS-outer evaluation order.
type AblationClosureCacheResult struct {
	Mode    string
	Seconds float64
	Probes  int
}

// RunAblationClosureCache probes N (lhs, rhs) pairs drawn from a small set
// of distinct RHS concepts — the join shape the RHS-outer optimization
// targets.
func RunAblationClosureCache(synsets, probes, distinctRHS int, seed int64) ([]AblationClosureCacheResult, error) {
	net := wordnet.Generate(wordnet.Config{Synsets: synsets, Seed: seed})
	rng := rand.New(rand.NewSource(seed))

	// RHS concepts: nodes with mid-size closures; LHS values: random words.
	var rhs []types.UniText
	for i := 0; i < distinctRHS; i++ {
		id := net.FindClosureOfSize(200 + 150*i)
		rhs = append(rhs, types.Compose(net.Lemma(types.LangEnglish, id), types.LangEnglish))
	}
	var lhs []types.UniText
	for i := 0; i < probes; i++ {
		id := wordnet.SynsetID(rng.Intn(net.NumSynsets()))
		lhs = append(lhs, types.Compose(net.Lemma(types.LangEnglish, id), types.LangEnglish))
	}

	var out []AblationClosureCacheResult

	m := wordnet.NewMatcher(net)
	start := time.Now()
	count := 0
	for i, l := range lhs {
		if m.Match(l, rhs[i%len(rhs)], nil) {
			count++
		}
	}
	out = append(out, AblationClosureCacheResult{Mode: "cached (RHS-outer)", Seconds: time.Since(start).Seconds(), Probes: len(lhs)})

	start = time.Now()
	count2 := 0
	for i, l := range lhs {
		if m.MatchNoCache(l, rhs[i%len(rhs)], nil) {
			count2++
		}
	}
	out = append(out, AblationClosureCacheResult{Mode: "no cache (recompute)", Seconds: time.Since(start).Seconds(), Probes: len(lhs)})
	if count != count2 {
		panic("ablation: cache changed Ω results")
	}
	return out, nil
}

// AblationEditDistanceResult compares the full DP against the banded
// (diagonal-transition style) computation the paper's cost models assume.
type AblationEditDistanceResult struct {
	Algorithm string
	Seconds   float64
	Matches   int
}

// RunAblationEditDistance measures both algorithms over an all-pairs name
// workload.
func RunAblationEditDistance(names, threshold int, seed int64) ([]AblationEditDistanceResult, error) {
	phs := genPhonemes(names, seed)
	var out []AblationEditDistanceResult

	start := time.Now()
	matches := 0
	for i := range phs {
		for j := i + 1; j < len(phs); j++ {
			if phonetic.EditDistance(phs[i], phs[j]) <= threshold {
				matches++
			}
		}
	}
	out = append(out, AblationEditDistanceResult{Algorithm: "full-dp", Seconds: time.Since(start).Seconds(), Matches: matches})

	start = time.Now()
	matches2 := 0
	for i := range phs {
		for j := i + 1; j < len(phs); j++ {
			if phonetic.WithinDistance(phs[i], phs[j], threshold) {
				matches2++
			}
		}
	}
	out = append(out, AblationEditDistanceResult{Algorithm: "banded", Seconds: time.Since(start).Seconds(), Matches: matches2})
	if matches != matches2 {
		panic("ablation: banded edit distance disagrees with full DP")
	}
	return out, nil
}

// genPhonemes produces a deterministic phoneme corpus shaped like the name
// workload.
func genPhonemes(n int, seed int64) []string {
	bases := []string{"nehru", "gandi", "aʃok", "kamala", "kriʃnan", "lakʃmi",
		"patel", "ʃarma", "redi", "menon", "varma", "ʧandra", "prakaʃ", "mohan"}
	alphabet := []rune("aeiouknrstmplʃʧʤgdbvjh")
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for len(out) < n {
		b := []rune(bases[rng.Intn(len(bases))])
		for e := rng.Intn(3); e > 0; e-- {
			switch rng.Intn(3) {
			case 0:
				b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
			case 1:
				pos := rng.Intn(len(b) + 1)
				b = append(b[:pos], append([]rune{alphabet[rng.Intn(len(alphabet))]}, b[pos:]...)...)
			default:
				if len(b) > 2 {
					pos := rng.Intn(len(b))
					b = append(b[:pos], b[pos+1:]...)
				}
			}
		}
		out = append(out, string(b))
	}
	return out
}

// AblationClosureIndexResult compares the three closure-processing
// strategies on the same membership workload: per-query traversal, the
// §4.3 hash-table memoization, and the §4.3.1 future-work connection index
// (interval labeling, the tree specialization of the Hopi 2-hop cover).
type AblationClosureIndexResult struct {
	Mode     string
	BuildSec float64
	QuerySec float64
	Probes   int
}

// RunAblationClosureIndex measures membership probes against distinct roots.
func RunAblationClosureIndex(synsets, probes, distinctRHS int, seed int64) ([]AblationClosureIndexResult, error) {
	net := wordnet.Generate(wordnet.Config{Synsets: synsets, Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	roots := make([]wordnet.SynsetID, distinctRHS)
	for i := range roots {
		roots[i] = net.FindClosureOfSize(150 + 200*i)
	}
	nodes := make([]wordnet.SynsetID, probes)
	for i := range nodes {
		nodes[i] = wordnet.SynsetID(rng.Intn(net.NumSynsets()))
	}
	var out []AblationClosureIndexResult

	// Traversal per probe (IsDescendant walks parent pointers).
	start := time.Now()
	c0 := 0
	for i, n := range nodes {
		if net.IsDescendant(n, roots[i%len(roots)]) {
			c0++
		}
	}
	out = append(out, AblationClosureIndexResult{Mode: "traverse (no cache)", QuerySec: time.Since(start).Seconds(), Probes: probes})

	// Hash-table memoization (§4.3).
	cache := wordnet.NewClosureCache(net)
	start = time.Now()
	c1 := 0
	for i, n := range nodes {
		if cache.Contains(n, roots[i%len(roots)]) {
			c1++
		}
	}
	out = append(out, AblationClosureIndexResult{Mode: "hash cache (§4.3)", QuerySec: time.Since(start).Seconds(), Probes: probes})

	// Interval connection index (§4.3.1 future work).
	start = time.Now()
	ix := wordnet.NewIntervalIndex(net)
	build := time.Since(start).Seconds()
	start = time.Now()
	c2 := 0
	for i, n := range nodes {
		if ix.Contains(n, roots[i%len(roots)]) {
			c2++
		}
	}
	out = append(out, AblationClosureIndexResult{Mode: "interval index (§4.3.1)", BuildSec: build, QuerySec: time.Since(start).Seconds(), Probes: probes})
	if c0 != c1 || c1 != c2 {
		panic("ablation: closure strategies disagree")
	}
	return out, nil
}

// AblationPsiIndexResult compares every Ψ access path on the same scan
// workload: the alternate-index exploration the paper's conclusion plans
// ("we plan to experiment with alternate index structures").
type AblationPsiIndexResult struct {
	Path      string
	Threshold int
	AvgSec    float64
	Matches   int64
}

// RunAblationPsiIndexes measures seqscan, M-Tree, MDI and q-gram paths at
// several thresholds over one names table, by toggling the optimizer
// switches so each path is the only metric option.
func RunAblationPsiIndexes(names int, seed int64) ([]AblationPsiIndexResult, error) {
	db, err := NewNamesDB(NamesConfig{Names: names, Seed: seed})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if _, err := db.Eng.Exec(`CREATE INDEX idx_names_qgram ON names (name) USING QGRAM`); err != nil {
		return nil, err
	}
	if _, err := db.Eng.Exec(`ANALYZE names`); err != nil {
		return nil, err
	}
	queries := db.Queries
	if len(queries) > 5 {
		queries = queries[:5]
	}
	paths := []struct {
		name     string
		settings map[string]string
	}{
		{"seqscan", map[string]string{"enable_mtree": "off", "enable_mdi": "off", "enable_qgram": "off"}},
		{"mtree", map[string]string{"enable_mtree": "on", "enable_mdi": "off", "enable_qgram": "off"}},
		{"mdi", map[string]string{"enable_mtree": "off", "enable_mdi": "on", "enable_qgram": "off"}},
		{"qgram", map[string]string{"enable_mtree": "off", "enable_mdi": "off", "enable_qgram": "on"}},
	}
	var out []AblationPsiIndexResult
	for _, k := range []int{1, 2, 3} {
		for _, path := range paths {
			for name, val := range path.settings {
				if _, err := db.Eng.Exec("SET " + name + " = " + val); err != nil {
					return nil, err
				}
			}
			var total time.Duration
			var matches int64
			for _, q := range queries {
				sqlq := fmt.Sprintf(`SELECT count(*) FROM names WHERE name LEXEQUAL %s THRESHOLD %d`, quote(q.Text), k)
				// Warm once, then measure.
				if _, err := db.Eng.Exec(sqlq); err != nil {
					return nil, err
				}
				res, err := db.Eng.Exec(sqlq)
				if err != nil {
					return nil, err
				}
				total += res.Elapsed
				matches += res.Rows[0][0].Int()
			}
			out = append(out, AblationPsiIndexResult{
				Path: path.name, Threshold: k,
				AvgSec:  total.Seconds() / float64(len(queries)),
				Matches: matches,
			})
		}
	}
	// Every path must agree on every threshold.
	byK := map[int]int64{}
	for _, r := range out {
		if prev, ok := byK[r.Threshold]; ok && prev != r.Matches {
			return out, fmt.Errorf("bench: access paths disagree at k=%d: %d vs %d", r.Threshold, prev, r.Matches)
		}
		byK[r.Threshold] = r.Matches
	}
	return out, nil
}
