// Package catalog holds the engine's metadata: table and index definitions,
// per-column statistics (end-biased histograms gathered by ANALYZE), and the
// session/system settings table. The settings table is where the paper's
// "user-settable threshold in a system table" workaround lives (§4.2):
// PostgreSQL's operator facility is binary-only, so the Ψ threshold travels
// out of band when a query does not spell THRESHOLD explicitly.
package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"github.com/mural-db/mural/internal/histogram"
	"github.com/mural-db/mural/internal/sql"
	"github.com/mural-db/mural/internal/storage"
	"github.com/mural-db/mural/internal/types"
)

// Column describes one table column.
type Column struct {
	Name string     `json:"name"`
	Kind types.Kind `json:"kind"`
}

// Table describes one base table.
type Table struct {
	Name    string         `json:"name"`
	Columns []Column       `json:"columns"`
	File    storage.FileID `json:"file"`
}

// ColumnIndex returns the position of a column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Index describes one secondary index.
type Index struct {
	Name   string         `json:"name"`
	Table  string         `json:"table"`
	Column string         `json:"column"`
	Kind   sql.IndexKind  `json:"kind"`
	File   storage.FileID `json:"file"`
	// Pivot is the MDI pivot string (MDI only).
	Pivot string `json:"pivot,omitempty"`
}

// ColumnStats summarizes one column for the optimizer.
type ColumnStats struct {
	// Hist is built over phoneme strings for UNITEXT columns and canonical
	// string forms otherwise.
	Hist *histogram.Histogram `json:"hist"`
	// AvgWidth is the mean encoded width in bytes.
	AvgWidth float64 `json:"avg_width"`
	// NullFrac is the fraction of NULL values.
	NullFrac float64 `json:"null_frac"`
}

// TableStats summarizes one table for the optimizer.
type TableStats struct {
	Rows    int64                   `json:"rows"`
	Pages   int64                   `json:"pages"`
	Columns map[string]*ColumnStats `json:"columns"`
}

// Default settings. LexThresholdKey mirrors the paper's system-table
// parameter; the others are the optimizer's cost knobs.
const (
	LexThresholdKey     = "lexequal_threshold"
	DefaultLexThreshold = 2
)

// Catalog is the full metadata store. All methods are safe for concurrent
// use.
type Catalog struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	indexes  map[string]*Index
	stats    map[string]*TableStats
	settings map[string]string
	nextFile storage.FileID
	// version counts metadata mutations (DDL, stats, settings). Plan caches
	// key on it: any change that could alter planning bumps it, so stale
	// plans simply stop matching.
	version uint64
}

// Version returns the metadata mutation counter.
func (c *Catalog) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:   make(map[string]*Table),
		indexes:  make(map[string]*Index),
		stats:    make(map[string]*TableStats),
		settings: map[string]string{LexThresholdKey: strconv.Itoa(DefaultLexThreshold)},
		nextFile: 1,
	}
}

// AllocateFile hands out the next storage file id.
func (c *Catalog) AllocateFile() storage.FileID {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextFile
	c.nextFile++
	return id
}

// AddTable registers a table.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	for _, col := range t.Columns {
		if seen[col.Name] {
			return fmt.Errorf("catalog: table %q: duplicate column %q", t.Name, col.Name)
		}
		seen[col.Name] = true
	}
	c.tables[t.Name] = t
	c.version++
	return nil
}

// DropTable removes a table and its indexes, returning the dropped index
// metadata so the engine can release their files.
func (c *Catalog) DropTable(name string) ([]*Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, name)
	delete(c.stats, name)
	var dropped []*Index
	for iname, ix := range c.indexes {
		if ix.Table == name {
			dropped = append(dropped, ix)
			delete(c.indexes, iname)
		}
	}
	c.version++
	return dropped, nil
}

// TableByName looks up a table.
func (c *Catalog) TableByName(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Tables lists all tables, sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddIndex registers an index.
func (c *Catalog) AddIndex(ix *Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.indexes[ix.Name]; dup {
		return fmt.Errorf("catalog: index %q already exists", ix.Name)
	}
	t, ok := c.tables[ix.Table]
	if !ok {
		return fmt.Errorf("catalog: index %q: no such table %q", ix.Name, ix.Table)
	}
	if t.ColumnIndex(ix.Column) < 0 {
		return fmt.Errorf("catalog: index %q: no column %q in table %q", ix.Name, ix.Column, ix.Table)
	}
	c.indexes[ix.Name] = ix
	c.version++
	return nil
}

// RemoveIndex unregisters an index (used to undo a failed CREATE INDEX).
func (c *Catalog) RemoveIndex(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[name]; !ok {
		return fmt.Errorf("catalog: index %q does not exist", name)
	}
	delete(c.indexes, name)
	c.version++
	return nil
}

// IndexByName looks up an index.
func (c *Catalog) IndexByName(name string) (*Index, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ix, ok := c.indexes[name]
	return ix, ok
}

// IndexesOn lists the indexes on a table column, sorted by name.
func (c *Catalog) IndexesOn(table, column string) []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Index
	for _, ix := range c.indexes {
		if ix.Table == table && ix.Column == column {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Indexes lists all indexes, sorted by name.
func (c *Catalog) Indexes() []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Index, 0, len(c.indexes))
	for _, ix := range c.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetStats installs ANALYZE results for a table.
func (c *Catalog) SetStats(table string, st *TableStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats[table] = st
	c.version++
}

// Stats returns the ANALYZE results for a table (nil when never analyzed).
func (c *Catalog) Stats(table string) *TableStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats[table]
}

// SetSetting stores a session/system setting.
func (c *Catalog) SetSetting(name, value string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.settings[name] = value
	c.version++
}

// Setting reads a setting.
func (c *Catalog) Setting(name string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.settings[name]
	return v, ok
}

// LexThreshold returns the session Ψ threshold (the paper's system-table
// parameter).
func (c *Catalog) LexThreshold() int {
	v, ok := c.Setting(LexThresholdKey)
	if !ok {
		return DefaultLexThreshold
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return DefaultLexThreshold
	}
	return n
}

// persisted is the JSON disk image.
type persisted struct {
	Tables   []*Table               `json:"tables"`
	Indexes  []*Index               `json:"indexes"`
	Stats    map[string]*TableStats `json:"stats"`
	Settings map[string]string      `json:"settings"`
	NextFile storage.FileID         `json:"next_file"`
}

// Marshal renders the catalog as its canonical JSON disk image. The engine
// logs this image in WAL commit batches so DDL moves atomically with the
// page mutations it accompanies.
func (c *Catalog) Marshal() ([]byte, error) {
	c.mu.RLock()
	img := persisted{
		Stats:    c.stats,
		Settings: c.settings,
		NextFile: c.nextFile,
	}
	for _, t := range c.tables {
		img.Tables = append(img.Tables, t)
	}
	for _, ix := range c.indexes {
		img.Indexes = append(img.Indexes, ix)
	}
	c.mu.RUnlock()
	sort.Slice(img.Tables, func(i, j int) bool { return img.Tables[i].Name < img.Tables[j].Name })
	sort.Slice(img.Indexes, func(i, j int) bool { return img.Indexes[i].Name < img.Indexes[j].Name })

	data, err := json.MarshalIndent(&img, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("catalog: marshal: %w", err)
	}
	return data, nil
}

// Save writes the catalog to dir/catalog.json atomically.
func (c *Catalog) Save(dir string) error {
	data, err := c.Marshal()
	if err != nil {
		return err
	}
	return SaveImage(dir, data)
}

// SaveImage atomically installs a marshaled catalog image as
// dir/catalog.json. Crash recovery uses it to restore the catalog snapshot
// carried by the last committed WAL batch.
func SaveImage(dir string, data []byte) error {
	tmp := filepath.Join(dir, "catalog.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("catalog: write: %w", err)
	}
	return os.Rename(tmp, filepath.Join(dir, "catalog.json"))
}

// Load reads dir/catalog.json; a missing file yields a fresh catalog.
func Load(dir string) (*Catalog, error) {
	c := New()
	data, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: read: %w", err)
	}
	var img persisted
	if err := json.Unmarshal(data, &img); err != nil {
		return nil, fmt.Errorf("catalog: parse: %w", err)
	}
	for _, t := range img.Tables {
		c.tables[t.Name] = t
	}
	for _, ix := range img.Indexes {
		c.indexes[ix.Name] = ix
	}
	if img.Stats != nil {
		c.stats = img.Stats
	}
	for k, v := range img.Settings {
		c.settings[k] = v
	}
	if img.NextFile > c.nextFile {
		c.nextFile = img.NextFile
	}
	return c, nil
}
