package mural

import (
	"fmt"
	"strings"
	"testing"
)

func TestDeleteBasic(t *testing.T) {
	e := memEngine(t)
	e.MustExec(`CREATE TABLE t (id INT, v TEXT)`)
	e.MustExec(`INSERT INTO t VALUES (1,'a'), (2,'b'), (3,'c'), (4,'d')`)
	res := e.MustExec(`DELETE FROM t WHERE id < 3`)
	if res.RowsAffected != 2 {
		t.Fatalf("deleted %d", res.RowsAffected)
	}
	left := e.MustExec(`SELECT id FROM t ORDER BY id`)
	if len(left.Rows) != 2 || left.Rows[0][0].Int() != 3 {
		t.Errorf("remaining: %v", left.Rows)
	}
	// DELETE without WHERE clears the table.
	res = e.MustExec(`DELETE FROM t`)
	if res.RowsAffected != 2 {
		t.Errorf("full delete removed %d", res.RowsAffected)
	}
	if got := e.MustExec(`SELECT count(*) FROM t`); got.Rows[0][0].Int() != 0 {
		t.Error("table not empty")
	}
}

func TestDeleteMaintainsAllIndexes(t *testing.T) {
	e := memEngine(t)
	e.MustExec(`CREATE TABLE names (id INT, name UNITEXT)`)
	// Letter-only names: the G2P drops digits, so digit suffixes would
	// collapse every row to one phoneme.
	suffix := func(n int) string {
		return string(rune('k'+n/10)) + string(rune('k'+n%10))
	}
	var vals []string
	for i := 0; i < 300; i++ {
		vals = append(vals, fmt.Sprintf("(%d, unitext('nam%s', english))", i, suffix(i%60)))
	}
	e.MustExec(`INSERT INTO names VALUES ` + strings.Join(vals, ","))
	e.MustExec(`CREATE INDEX i_bt ON names (id) USING BTREE`)
	e.MustExec(`CREATE INDEX i_mt ON names (name) USING MTREE`)
	e.MustExec(`CREATE INDEX i_md ON names (name) USING MDI`)
	e.MustExec(`ANALYZE names`)

	before := e.MustExec(`SELECT count(*) FROM names WHERE name LEXEQUAL 'namkl' THRESHOLD 0`)
	if before.Rows[0][0].Int() != 5 {
		t.Fatalf("precondition: %v", before.Rows[0][0])
	}
	res := e.MustExec(`DELETE FROM names WHERE name LEXEQUAL 'namkl' THRESHOLD 0`)
	if res.RowsAffected != 5 {
		t.Fatalf("deleted %d", res.RowsAffected)
	}
	// Every access path must now agree on zero matches.
	for _, setting := range [][2]string{
		{"enable_mtree", "on"}, {"enable_mtree", "off"},
	} {
		e.MustExec(fmt.Sprintf(`SET %s = %s`, setting[0], setting[1]))
		got := e.MustExec(`SELECT count(*) FROM names WHERE name LEXEQUAL 'namkl' THRESHOLD 0`)
		if got.Rows[0][0].Int() != 0 {
			t.Errorf("%s=%s: deleted rows still visible: %v\nplan:\n%s",
				setting[0], setting[1], got.Rows[0][0], got.Plan)
		}
	}
	// B-tree path too.
	got := e.MustExec(`SELECT count(*) FROM names WHERE id = 1`)
	if got.Rows[0][0].Int() != 0 {
		t.Errorf("btree path sees deleted row")
	}
	// Untouched rows survive on all paths.
	got = e.MustExec(`SELECT count(*) FROM names WHERE name LEXEQUAL 'namkm' THRESHOLD 0`)
	if got.Rows[0][0].Int() != 5 {
		t.Errorf("collateral damage: %v", got.Rows[0][0])
	}
}

func TestDeleteErrors(t *testing.T) {
	e := memEngine(t)
	if _, err := e.Exec(`DELETE FROM ghost`); err == nil {
		t.Error("delete from missing table must fail")
	}
	e.MustExec(`CREATE TABLE t (id INT)`)
	if _, err := e.Exec(`DELETE FROM t WHERE ghost = 1`); err == nil {
		t.Error("delete with bad predicate must fail")
	}
}

func TestLikeOperator(t *testing.T) {
	e := memEngine(t)
	e.MustExec(`CREATE TABLE t (v TEXT, u UNITEXT)`)
	e.MustExec(`INSERT INTO t VALUES
		('hello world', unitext('namaste', hindi)),
		('hello there', unitext('hallo', german)),
		('goodbye', unitext('adieu', french))`)
	cases := []struct {
		pattern string
		want    int64
	}{
		{"hello%", 2},
		{"%world", 1},
		{"%o%", 3},
		{"h_llo%", 2},
		{"goodbye", 1},
		{"%zzz%", 0},
		{"", 0},
		{"%", 3},
	}
	for _, c := range cases {
		res := e.MustExec(fmt.Sprintf(`SELECT count(*) FROM t WHERE v LIKE '%s'`, c.pattern))
		if got := res.Rows[0][0].Int(); got != c.want {
			t.Errorf("LIKE %q = %d, want %d", c.pattern, got, c.want)
		}
	}
	// LIKE on UNITEXT applies to the Text component (§3.2.1).
	res := e.MustExec(`SELECT count(*) FROM t WHERE u LIKE 'nama%'`)
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("LIKE on UNITEXT = %v", res.Rows[0][0])
	}
	res = e.MustExec(`SELECT count(*) FROM t WHERE NOT v LIKE 'hello%'`)
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("NOT LIKE = %v", res.Rows[0][0])
	}
}

func TestInsertAfterDeleteReusesHeap(t *testing.T) {
	e := memEngine(t)
	e.MustExec(`CREATE TABLE t (id INT)`)
	e.MustExec(`INSERT INTO t VALUES (1), (2), (3)`)
	e.MustExec(`DELETE FROM t WHERE id = 2`)
	e.MustExec(`INSERT INTO t VALUES (4)`)
	res := e.MustExec(`SELECT id FROM t ORDER BY id`)
	if len(res.Rows) != 3 || res.Rows[2][0].Int() != 4 {
		t.Errorf("rows after delete+insert: %v", res.Rows)
	}
}

func TestQGramIndexEndToEnd(t *testing.T) {
	e := memEngine(t)
	e.MustExec(`CREATE TABLE names (id INT, name UNITEXT)`)
	base := []string{"nehru", "neru", "nahru", "gandhi", "gandi", "tagore", "bose", "patel", "mehta", "iyer"}
	var vals []string
	id := 0
	for rep := 0; rep < 20; rep++ {
		for _, b := range base {
			vals = append(vals, fmt.Sprintf("(%d, unitext('%s', english))", id, b))
			id++
		}
	}
	e.MustExec(`INSERT INTO names VALUES ` + strings.Join(vals, ","))

	want := e.MustExec(`SELECT count(*) FROM names WHERE name LEXEQUAL 'nehru' THRESHOLD 2`).Rows[0][0].Int()
	if want == 0 {
		t.Fatal("no matches in fixture")
	}

	e.MustExec(`CREATE INDEX idx_qg ON names (name) USING QGRAM`)
	e.MustExec(`ANALYZE names`)
	res := e.MustExec(`SELECT count(*) FROM names WHERE name LEXEQUAL 'nehru' THRESHOLD 2`)
	if got := res.Rows[0][0].Int(); got != want {
		t.Errorf("qgram path count = %d, want %d\nplan:\n%s", got, want, res.Plan)
	}
	// The planner should pick the q-gram scan at low thresholds on this
	// selective query once statistics are in.
	low := e.MustExec(`EXPLAIN SELECT count(*) FROM names WHERE name LEXEQUAL 'nehru' THRESHOLD 1`)
	if !strings.Contains(low.Plan, "QGram") {
		t.Logf("note: planner did not pick QGram at k=1:\n%s", low.Plan)
	}
	// Toggle off and verify agreement.
	e.MustExec(`SET enable_qgram = off`)
	res = e.MustExec(`SELECT count(*) FROM names WHERE name LEXEQUAL 'nehru' THRESHOLD 2`)
	if strings.Contains(res.Plan, "QGram") {
		t.Errorf("enable_qgram=off ignored:\n%s", res.Plan)
	}
	if res.Rows[0][0].Int() != want {
		t.Error("count changed with qgram disabled")
	}
	e.MustExec(`SET enable_qgram = on`)

	// DELETE maintains the q-gram lists.
	e.MustExec(`DELETE FROM names WHERE name LEXEQUAL 'nehru' THRESHOLD 0`)
	res = e.MustExec(`SELECT count(*) FROM names WHERE name LEXEQUAL 'nehru' THRESHOLD 0`)
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("qgram sees deleted rows: %v\nplan:\n%s", res.Rows[0][0], res.Plan)
	}
}

func TestQGramIndexSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e.MustExec(`CREATE TABLE t (id INT, name UNITEXT)`)
	e.MustExec(`INSERT INTO t VALUES (1, unitext('nehru', english)), (2, unitext('bose', english))`)
	e.MustExec(`CREATE INDEX qg ON t (name) USING QGRAM`)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	e2.MustExec(`SET enable_mtree = off`)
	res := e2.MustExec(`SELECT count(*) FROM t WHERE name LEXEQUAL 'nehru' THRESHOLD 1`)
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("rebuilt qgram index: %v\nplan:\n%s", res.Rows[0][0], res.Plan)
	}
}
