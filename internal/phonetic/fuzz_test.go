package phonetic

import (
	"testing"
	"unicode/utf8"
)

// FuzzG2P runs every registered grapheme-to-phoneme converter on arbitrary
// text. Converters must never panic, must be deterministic, and must emit
// valid UTF-8 (the phoneme string is stored in pages and compared rune-wise
// by the edit-distance kernels).
func FuzzG2P(f *testing.F) {
	seeds := []string{
		// Latin (English/French readings).
		"Nehru", "Gandhi", "Ashok", "Jawaharlal Nehru", "Knight", "Xavier",
		"histoire", "général", "québec", "eau",
		// Devanagari.
		"नेहरू", "गांधी", "अशोक", "कमल", "क्या", "भारत",
		// Tamil.
		"நேரு", "காந்தி", "கமலா", "அசோகா",
		// Kannada.
		"ನೆಹರು", "ಗಾಂಧಿ", "ಅಶೋಕ",
		// Edge shapes: empty, lone combining marks, broken UTF-8, mixed
		// scripts, virama at end.
		"", " ", "ं", "்", "\xff\xfe", "a\xffb", "Nehru नेहरू", "क्",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	reg := DefaultRegistry()
	langs := reg.Langs()
	f.Fuzz(func(t *testing.T, text string) {
		for _, lang := range langs {
			c, ok := reg.Lookup(lang)
			if !ok {
				t.Fatalf("registered language %s disappeared", lang)
			}
			ph := c.ToPhoneme(text)
			if ph != c.ToPhoneme(text) {
				t.Fatalf("%s.ToPhoneme(%q) is not deterministic", lang, text)
			}
			if utf8.ValidString(text) && !utf8.ValidString(ph) {
				t.Fatalf("%s.ToPhoneme(%q) produced invalid UTF-8 %q", lang, text, ph)
			}
			if d := EditDistance(ph, ph); d != 0 {
				t.Fatalf("EditDistance(%q,%q) = %d, want 0", ph, ph, d)
			}
		}
	})
}
