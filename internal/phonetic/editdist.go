// Package phonetic provides the phonetic substrate for the LexEQUAL (Ψ)
// operator: grapheme-to-phoneme converters that render multilingual text
// into a canonical IPA alphabet (standing in for the Dhvani engine used by
// the paper), and Levenshtein edit-distance routines, including the
// threshold-banded variant that the paper's cost models assume ("all
// edit-distance computations were implemented using the diagonal transition
// algorithm", §3.3).
package phonetic

// EditDistance returns the Levenshtein distance between a and b, computed
// over Unicode code points with the classic O(len(a)·len(b)) dynamic
// program using two rolling rows.
func EditDistance(a, b string) int {
	return editDistanceRunes([]rune(a), []rune(b))
}

func editDistanceRunes(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Keep the shorter string as the row for O(min) space.
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		ai := ra[i-1]
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ai == rb[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute / match
			if d := prev[j] + 1; d < m { // delete
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insert
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// BoundedEditDistance reports whether the Levenshtein distance between a and
// b is at most k, and if so returns the exact distance. Strings of at most
// 64 code points — which covers essentially every phoneme string Ψ compares
// — take the Myers bit-parallel path, processing a whole DP column per word
// operation with zero heap allocation. Longer inputs fall back to the banded
// (diagonal-restricted) dynamic program in O(k·min(len)) time, in the spirit
// of the diagonal-transition algorithms surveyed by Navarro that the paper's
// implementation uses: cells farther than k from the main diagonal can never
// participate in an alignment of cost ≤ k and are never touched.
func BoundedEditDistance(a, b string, k int) (int, bool) {
	if k < 0 {
		return 0, false
	}
	var pa, pb [64]rune
	na, aok := runesInto(a, &pa)
	nb, bok := runesInto(b, &pb)
	if aok && bok {
		return myersBounded(pa[:na], pb[:nb], k)
	}
	return boundedEditDistanceRunes([]rune(a), []rune(b), k)
}

// runesInto decodes s into buf, reporting the rune count and whether the
// whole string fit. Decoding into a caller-provided fixed array keeps the
// fast path allocation-free.
func runesInto(s string, buf *[64]rune) (int, bool) {
	n := 0
	for _, r := range s {
		if n == len(buf) {
			return n, false
		}
		buf[n] = r
		n++
	}
	return n, true
}

// myersBounded is the Myers (1999) bit-parallel Levenshtein kernel for
// pattern lengths ≤ 64: the vertical delta of one DP column is held in two
// machine words (VP/VN) and advanced with a constant number of word
// operations per text character. The pattern-match vector PM is built with a
// linear scan over the (short) pattern instead of a per-call alphabet map,
// which keeps the kernel allocation-free for arbitrary Unicode.
func myersBounded(ra, rb []rune, k int) (int, bool) {
	gap := len(ra) - len(rb)
	if gap < 0 {
		gap = -gap
	}
	if gap > k {
		return 0, false
	}
	if len(ra) == 0 {
		return len(rb), len(rb) <= k
	}
	if len(rb) == 0 {
		return len(ra), len(ra) <= k
	}
	// Keep the shorter string as the pattern so the score bound is tight.
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	m := uint(len(ra))
	vp := ^uint64(0) >> (64 - m)
	vn := uint64(0)
	score := len(ra)
	mask := uint64(1) << (m - 1)
	for i, c := range rb {
		var pm uint64
		for j, pc := range ra {
			if pc == c {
				pm |= 1 << uint(j)
			}
		}
		d0 := (((pm & vp) + vp) ^ vp) | pm | vn
		hp := vn | ^(d0 | vp)
		hn := d0 & vp
		if hp&mask != 0 {
			score++
		}
		if hn&mask != 0 {
			score--
		}
		hp = hp<<1 | 1
		hn <<= 1
		vp = hn | ^(d0 | hp)
		vn = d0 & hp
		// The final score can drop by at most 1 per remaining text
		// character: prune as soon as the bound is out of reach.
		if rem := len(rb) - i - 1; score-rem > k {
			return 0, false
		}
	}
	if score > k {
		return 0, false
	}
	return score, true
}

func boundedEditDistanceRunes(ra, rb []rune, k int) (int, bool) {
	if k < 0 {
		return 0, false
	}
	// The length gap is an unconditional lower bound on the distance.
	gap := len(ra) - len(rb)
	if gap < 0 {
		gap = -gap
	}
	if gap > k {
		return 0, false
	}
	if len(ra) == 0 {
		return len(rb), len(rb) <= k
	}
	if len(rb) == 0 {
		return len(ra), len(ra) <= k
	}
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	n := len(rb)
	const inf = int(^uint(0) >> 2)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n && j <= k; j++ {
		prev[j] = j
	}
	for j := k + 1; j <= n; j++ {
		prev[j] = inf
	}
	for i := 1; i <= len(ra); i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > n {
			hi = n
		}
		if lo > hi {
			return 0, false
		}
		if lo == 1 {
			if i <= k {
				cur[0] = i
			} else {
				cur[0] = inf
			}
		} else {
			cur[lo-1] = inf
		}
		rowMin := inf
		ai := ra[i-1]
		for j := lo; j <= hi; j++ {
			cost := 1
			if ai == rb[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if j <= i+k-1 && j <= n { // prev[j] is inside last row's band iff |i-1-j| <= k
				if d := prev[j] + 1; d < m {
					m = d
				}
			}
			if d := cur[j-1] + 1; d < m {
				m = d
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if hi < n {
			cur[hi+1] = inf // seal the band edge for the next row's prev[j-1] read
		}
		if rowMin > k {
			return 0, false // every cell in the band exceeds k: early exit
		}
		prev, cur = cur, prev
	}
	d := prev[n]
	if d > k {
		return 0, false
	}
	return d, true
}

// WithinDistance reports whether the edit distance between a and b is at
// most k. It is the predicate form used by the Ψ operator.
func WithinDistance(a, b string, k int) bool {
	_, ok := BoundedEditDistance(a, b, k)
	return ok
}

// BoundedMatcher answers "is the edit distance to this pattern ≤ k" over a
// stream of candidates, pre-decoding the pattern's runes once. The
// executor's fused Ψ kernels compile one matcher per scan, so each stored
// phoneme costs a single rune-decode pass plus the Myers bit-parallel loop —
// with zero heap allocation on the ≤64-rune fast path.
type BoundedMatcher struct {
	pattern string
	pat     [64]rune
	n       int
	fits    bool
	k       int
}

// NewBoundedMatcher compiles pattern for threshold k.
func NewBoundedMatcher(pattern string, k int) *BoundedMatcher {
	m := &BoundedMatcher{pattern: pattern, k: k}
	m.n, m.fits = runesInto(pattern, &m.pat)
	return m
}

// Match reports whether the distance between the pattern and cand is ≤ k.
func (m *BoundedMatcher) Match(cand string) bool {
	if !m.fits {
		return WithinDistance(m.pattern, cand, m.k)
	}
	var buf [64]rune
	n, ok := runesInto(cand, &buf)
	if !ok {
		return WithinDistance(m.pattern, cand, m.k)
	}
	_, within := myersBounded(m.pat[:m.n], buf[:n], m.k)
	return within
}

// MatchBytes is Match over a raw UTF-8 byte view: the fused scan path hands
// phoneme bytes straight off a pinned heap page. Ranging over string(cand)
// decodes the bytes in place (the compiler elides the conversion), so the
// fast path stays allocation-free.
func (m *BoundedMatcher) MatchBytes(cand []byte) bool {
	if !m.fits {
		return WithinDistance(m.pattern, string(cand), m.k)
	}
	var buf [64]rune
	n := 0
	for _, r := range string(cand) {
		if n == len(buf) {
			return WithinDistance(m.pattern, string(cand), m.k)
		}
		buf[n] = r
		n++
	}
	_, within := myersBounded(m.pat[:m.n], buf[:n], m.k)
	return within
}
